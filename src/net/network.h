// Simulated IP multicast network.
//
// Implements the IP multicast group-delivery model the paper builds on
// (Sec. I): senders transmit to a group address with no knowledge of the
// membership; receivers join/leave independently.  Delivery follows the
// source-rooted shortest-path tree, pruned to subtrees containing members
// (DVMRP-style), with per-hop TTL decrement, Mbone TTL thresholds, optional
// administrative scoping, and loss injected by a DropPolicy.
//
// Hot-path layout: group membership is a per-group bitmap plus a sorted
// member list (O(1) is_member, O(1) members()); the member-pruned delivery
// tree for each (root, group) is cached as a flattened traversal trace that
// multicast() walks linearly — no hash lookups, no per-node stack frames —
// and every delivery of one transmission shares a single immutable Packet.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "net/drop_policy.h"
#include "net/packet.h"
#include "net/region_map.h"
#include "net/routing.h"
#include "net/topology.h"
#include "sim/event_queue.h"
#include "sim/pdes.h"
#include "trace/trace.h"

namespace srm::net {

struct NetworkStats {
  std::uint64_t multicasts_sent = 0;      // transmissions initiated
  std::uint64_t unicasts_sent = 0;
  std::uint64_t link_transmissions = 0;   // directed link traversals
  std::uint64_t deliveries = 0;           // packets handed to sinks
  std::uint64_t drops = 0;                // hops suppressed by DropPolicy
  std::uint64_t ttl_prunes = 0;           // hops suppressed by TTL/threshold
  std::uint64_t in_flight_invalidated = 0;  // deliveries lost to link/member
                                            // dynamics after being scheduled
};

class MulticastNetwork {
 public:
  MulticastNetwork(sim::EventQueue& queue, const Topology& topo);

  // --- Conservative-PDES mode (region-scoped operation) ------------------
  // Under the parallel kernel there is one MulticastNetwork per region, each
  // bound to that region's EventQueue.  A sender's network still walks the
  // full member-pruned tree (the whole walk — TTL, scoping, drop-policy
  // consultations — happens at send time on the sender's thread, exactly as
  // in sequential mode), but receivers in other regions are bucketed per
  // region and handed to the owning peer as a remote delivery chain through
  // a single-writer inbox lane.  The kernel's drain pass adopts those chains
  // into the destination's pool — first-class, so link-failure invalidation
  // still sees them — in deterministic (first arrival, origin region, origin
  // seq) order.  Control-plane calls (attach/detach, join/leave, drop
  // policies, invalidate_in_flight) fan out to every peer and are only legal
  // from serialized phases (setup or global events), never from a region
  // event.
  //
  // Must be called once per region network, before any attach/join, with
  // peers indexed by region (peers[self_region] == this).  Registers this
  // network's drain hook with the kernel.
  void enable_pdes(sim::ParallelKernel* kernel, const RegionMap* map,
                   std::uint32_t self_region,
                   std::vector<MulticastNetwork*> peers);
  bool pdes_enabled() const { return kernel_ != nullptr; }
  std::uint32_t self_region() const { return self_region_; }

  // Registers the protocol agent living at node n.  At most one sink per
  // node; the sink must outlive the network or be detached first.
  // PDES mode: call on the network owning n's region; the attachment flag
  // fans out so every sender's walk sees the same membership the sequential
  // kernel would.
  void attach(NodeId n, PacketSink* sink);
  void detach(NodeId n);

  void join(GroupId g, NodeId n);
  void leave(GroupId g, NodeId n);
  bool is_member(GroupId g, NodeId n) const;
  // Members in ascending NodeId order.  The store is kept sorted, so this
  // is O(1); the reference is invalidated by the next join/leave.
  const std::vector<NodeId>& members(GroupId g) const;

  // Loss injection; pass nullptr to clear.  Not owned exclusively: callers
  // usually keep a reference to rearm scripted drops between rounds.
  void set_drop_policy(std::shared_ptr<DropPolicy> policy);

  // Second, independent loss slot owned by the fault subsystem (bursty-loss
  // epochs).  Kept separate from set_drop_policy so experiment harnesses that
  // install per-round scripted drops do not clobber an active fault policy.
  // Consulted after the primary policy; pass nullptr to clear.
  void set_fault_drop_policy(std::shared_ptr<DropPolicy> policy);
  const std::shared_ptr<DropPolicy>& fault_drop_policy() const {
    return fault_drop_policy_;
  }

  // Link-failure support.  Packets already in flight were routed over the
  // old topology; any scheduled delivery whose (old) path crosses `link` is
  // marked lost and silently skipped when its event fires.  MUST be called
  // BEFORE Topology::set_link_up(link, false) — it consults the cached
  // shortest-path trees, which still describe the pre-failure topology.
  void invalidate_in_flight(LinkId link);

  // TTL-scoped delivery-tree fast path for hierarchy-mode local reports
  // (ARCHITECTURE.md §12).  When enabled, a globally-scoped multicast sent
  // with TTL < kMaxTtl walks a tree built by a TTL-truncated Dijkstra (exact
  // canonical tie-breaks) that only ever visits nodes within `ttl` hops of
  // the sender — O(area) per sender instead of the O(nodes) full SPT, which
  // is what makes per-member local session reports affordable at G = 50k.
  // Deliveries match the full-tree walk exactly on tree topologies and on
  // uniform-delay graphs; on a non-tree topology with non-uniform delays a
  // node whose canonical (min-delay) path exceeds `ttl` hops may still be
  // reached over a longer-delay short-hop path (a delivery superset).
  // TTL-prune counts and drop-policy consultation order also differ from
  // the full walk (pruned subtrees are never materialized), so this is off
  // by default and flat-path traces stay bit-identical.
  void set_scoped_tree_cache(bool on) { scoped_trees_enabled_ = on; }
  bool scoped_tree_cache() const { return scoped_trees_enabled_; }

  // Sends to all members of packet.group other than the sender itself.
  // packet.source is overwritten with `from`.
  void multicast(NodeId from, Packet packet);

  // Point-to-point delivery along the shortest path (used by baselines such
  // as unicast NACK schemes); subject to the same drop policy per hop.
  void unicast(NodeId from, NodeId to, Packet packet);

  // One-way path delay / hop count oracle (ground truth; SRM agents normally
  // use session-message estimates instead).  The try_ variants return
  // infinity / -1 instead of throwing when `to` is unreachable — the normal
  // case for callers racing with fault-injected partitions.
  double distance(NodeId from, NodeId to) { return routing_.distance(from, to); }
  int hops(NodeId from, NodeId to) { return routing_.hop_count(from, to); }
  double try_distance(NodeId from, NodeId to) {
    return routing_.try_distance(from, to);
  }
  int try_hops(NodeId from, NodeId to) { return routing_.try_hop_count(from, to); }

  Routing& routing() { return routing_; }
  const Topology& topology() const { return *topo_; }
  sim::EventQueue& queue() { return *queue_; }

  const NetworkStats& stats() const { return stats_; }
  void reset_stats() { stats_ = NetworkStats{}; }

  // Optional observer invoked for every delivered packet (after the sink);
  // used by the experiment harness to collect per-round message counts.
  using DeliveryObserver =
      std::function<void(const Packet&, const DeliveryInfo&)>;
  void set_delivery_observer(DeliveryObserver obs) {
    delivery_observer_ = std::move(obs);
  }
  // Optional observer invoked for every transmission initiated (multicast or
  // unicast), before any propagation.
  using SendObserver = std::function<void(NodeId from, const Packet&)>;
  void set_send_observer(SendObserver obs) { send_observer_ = std::move(obs); }

  // Current observers, so instrumentation (e.g. the conformance checker)
  // can chain rather than replace.
  const DeliveryObserver& delivery_observer() const {
    return delivery_observer_;
  }
  const SendObserver& send_observer() const { return send_observer_; }

  // Structured tracing (net category: send/deliver/drop/prune with link,
  // TTL and group context).  Never pass nullptr; &trace::Tracer::null()
  // detaches.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }
  trace::Tracer* tracer() const { return tracer_; }

 private:
  struct GroupState {
    std::vector<std::uint64_t> bits;  // one bit per node
    std::vector<NodeId> sorted;       // ascending node ids

    bool test(NodeId n) const {
      return (bits[n >> 6] >> (n & 63)) & 1u;
    }
  };

  // Flattened member-pruned delivery tree for one (root, group).
  //
  // `steps` lists the tree's nodes in the exact order the previous
  // stack-based DFS popped them (children of each node are expanded in SPT
  // order, deepest-pushed popped first).  Each step's outgoing edges occupy
  // a contiguous range of `edges` in consultation order, and a step's whole
  // subtree occupies the contiguous step range [index, subtree_end) — so a
  // hop suppressed by TTL/scope/drop skips its subtree with one index jump.
  // Preserving that order keeps drop-policy RNG draws and event-queue FIFO
  // tie-breaks bit-for-bit identical to the recursive traversal.
  struct TraceStep {
    NodeId node;
    bool member;               // deliver here (group member, never the root)
    std::uint32_t subtree_end;  // one past the last step of this subtree
    std::uint32_t first_edge;
    std::uint32_t edge_count;
  };
  struct TraceEdge {
    NodeId child;
    LinkId link;
    double delay;
    int threshold;
    std::uint32_t child_step;
  };
  struct PrunedTree {
    std::uint64_t membership_version = 0;
    std::uint64_t topology_version = 0;
    std::vector<TraceStep> steps;
    std::vector<TraceEdge> edges;
  };

  // Per-delivery state while walking a trace.
  struct WalkState {
    double delay;
    int ttl;
    int hops;
    bool blocked;
  };

  const PrunedTree& pruned(NodeId root, GroupId group);
  const PrunedTree& pruned_scoped(NodeId root, GroupId group, int ttl);
  void schedule_delivery(const std::shared_ptr<const Packet>& packet,
                         NodeId to, double delay, int hops_taken);
  void fire_delivery(std::uint32_t index);
  std::uint32_t acquire_chain();
  void dispatch_chain(std::uint32_t index, double sent_at);
  void fire_chain(std::uint32_t index);
  void join_local(GroupId g, NodeId n);
  void leave_local(GroupId g, NodeId n);
  void set_drop_policy_local(std::shared_ptr<DropPolicy> policy);
  void invalidate_in_flight_local(LinkId link);
  bool hop_allowed(const Packet& packet, int ttl_at_from, const LinkEnd& edge,
                   NodeId from, std::uint64_t packet_ordinal);
  // Composes the sending node with its per-source transmission counter into
  // the stable packet ordinal keyed drop policies consume.  Deterministic
  // across kernels: a node's sends all flow through the network owning its
  // region, in event-order-equivalent order.
  std::uint64_t next_send_ordinal(NodeId from) {
    return (static_cast<std::uint64_t>(from) << 40) |
           (send_ordinal_[from]++ & ((std::uint64_t{1} << 40) - 1));
  }
  // True if the cached SPT path src -> dst traverses `link` (either
  // direction).  Used only by invalidate_in_flight.
  bool path_uses_link(NodeId src, NodeId dst, LinkId link);

  sim::EventQueue* queue_;
  const Topology* topo_;
  Routing routing_;
  std::vector<PacketSink*> sinks_;
  std::unordered_map<GroupId, GroupState> groups_;
  std::uint64_t membership_version_ = 1;
  std::unordered_map<std::uint64_t, PrunedTree> pruned_cache_;
  bool scoped_trees_enabled_ = false;
  std::map<std::tuple<NodeId, GroupId, int>, PrunedTree> scoped_cache_;
  // Generation-stamped scratch for pruned_scoped: a slot's value is valid
  // only when its stamp equals the current generation, so a build touches
  // O(visited) slots with no O(nodes) clears.
  std::uint64_t scoped_gen_ = 0;
  std::vector<std::uint64_t> scoped_stamp_;  // (dist, hops, parent) valid
  std::vector<std::uint64_t> scoped_done_;   // finalized this build
  std::vector<std::uint64_t> scoped_need_;   // lies on a member path
  std::vector<double> scoped_dist_;
  std::vector<int> scoped_hops_;
  std::vector<NodeId> scoped_parent_;
  std::vector<LinkId> scoped_parent_link_;
  std::vector<NodeId> scoped_visited_;       // finalized nodes, pop order
  std::vector<std::pair<NodeId, NodeId>> scoped_children_;  // (parent, child)
  std::shared_ptr<DropPolicy> drop_policy_;
  std::shared_ptr<DropPolicy> fault_drop_policy_;
  NetworkStats stats_;
  DeliveryObserver delivery_observer_;
  SendObserver send_observer_;
  trace::Tracer* tracer_ = &trace::Tracer::null();

  // Reused scratch for multicast() walks (events never interrupt a walk).
  std::vector<WalkState> walk_scratch_;
  std::vector<bool> need_scratch_;

  // In-flight deliveries.  Entries are referenced from event closures by
  // index, so one multicast copies its Packet exactly once and each
  // per-receiver closure stays within std::function's inline buffer.
  // The sink is re-resolved at fire time (not captured here): the receiver
  // may detach between scheduling and delivery (member crash/leave), and a
  // link failure may mark the entry `dropped`.
  struct PendingDelivery {
    std::shared_ptr<const Packet> packet;
    DeliveryInfo info;
    bool dropped = false;
  };
  std::vector<PendingDelivery> delivery_pool_;
  std::vector<std::uint32_t> free_deliveries_;

  // One multicast's deliveries, chained: the walk collects every receiver,
  // reserves the whole block of event-queue sequence numbers up front, and
  // sorts by (delay, seq).  Only the chain's NEXT delivery lives in the
  // event heap; each firing re-inserts the following one under its
  // pre-assigned (time, seq) key.  That keeps the heap at one entry per
  // in-flight multicast instead of one per receiver — a large-session round
  // goes from hundreds of thousands of pending heap entries (every sift a
  // cache miss) to a few hundred — while executing deliveries in exactly
  // the order eager per-receiver scheduling would have.
  struct ChainItem {
    double delay;       // path delay from the sender
    std::uint64_t seq;  // pre-assigned event-queue tie-break
    NodeId to;
    int hops;
    bool dropped = false;  // invalidated by a link failure after scheduling
  };
  struct DeliveryChain {
    std::shared_ptr<const Packet> packet;
    std::vector<ChainItem> items;
    double sent_at = 0.0;
    std::uint32_t cursor = 0;
  };
  std::vector<DeliveryChain> chain_pool_;
  std::vector<std::uint32_t> free_chains_;

  // --- PDES state (inert in sequential mode) -----------------------------
  // A delivery chain crossing a region boundary, in flight between the
  // sender's walk and the destination's drain pass.  Items keep the path
  // delay measured from the original sender; the destination re-bases them
  // on sent_at when it adopts the chain, so arrival times are exactly what
  // the sequential kernel would compute.
  struct RemoteChain {
    std::shared_ptr<const Packet> packet;
    std::vector<ChainItem> items;  // sorted by delay, walk order on ties
    double sent_at = 0.0;
    double first_arrival = 0.0;    // sent_at + items.front().delay
    std::uint32_t origin_region = 0;
    std::uint64_t origin_seq = 0;  // per-origin monotonic chain counter
  };
  // Ships one chain to this (destination) network; runs on the ORIGIN's
  // thread, touching only the origin's inbox lane.  During a window each
  // lane has exactly one writer (the origin region's worker) and no reader;
  // drain_remote() runs between windows with no region executing.
  void accept_remote_chain(std::uint32_t origin_region,
                           std::uint64_t origin_seq,
                           std::shared_ptr<const Packet> packet,
                           std::vector<ChainItem> items, double sent_at);
  // Kernel drain hook: adopts inbox chains into the local pool in
  // (first_arrival, origin_region, origin_seq) order.
  void drain_remote();

  sim::ParallelKernel* kernel_ = nullptr;
  const RegionMap* region_map_ = nullptr;
  std::uint32_t self_region_ = 0;
  std::vector<MulticastNetwork*> peers_;  // by region; empty when sequential
  // Global attachment map, maintained in every mode: region-scoped walks
  // must see remote receivers exactly as a sequential walk would see their
  // sinks.  In sequential mode attached_[n] mirrors sinks_[n] != nullptr.
  std::vector<std::uint8_t> attached_;
  // Per-source transmission counters feeding next_send_ordinal().  Indexed
  // by sender; only the network owning the sender's region ever increments
  // a given slot, so no synchronization is needed.
  std::vector<std::uint64_t> send_ordinal_;
  std::vector<std::vector<RemoteChain>> inboxes_;  // [origin region]
  std::uint64_t remote_seq_ = 0;
  std::vector<RemoteChain> remote_merge_scratch_;
  // multicast() walk scratch: items destined for other regions, per region.
  std::vector<std::vector<ChainItem>> remote_buckets_;
  std::vector<std::uint32_t> touched_regions_;
};

}  // namespace srm::net
