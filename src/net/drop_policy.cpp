#include "net/drop_policy.h"

#include <stdexcept>
#include <utility>

namespace srm::net {

namespace {

// Key-space salts: one per draw family so RandomDrop decisions, GE loss
// decisions and GE chain transitions sharing a seed never collide.
constexpr std::uint64_t kSaltRandomDrop = 1;
constexpr std::uint64_t kSaltGeLoss = 2;
constexpr std::uint64_t kSaltGeTransition = 3;

// Stable coordinate for a directed link traversal: the (undirected) link id
// plus a direction bit.
std::uint64_t directed_edge_key(const HopContext& hop) {
  return (static_cast<std::uint64_t>(hop.link) << 1) |
         (hop.from > hop.to ? 1u : 0u);
}

}  // namespace

ScriptedLinkDrop::ScriptedLinkDrop(NodeId from, NodeId to, Predicate match,
                                   std::size_t max_drops)
    : from_(from), to_(to), match_(std::move(match)), max_drops_(max_drops) {
  if (!match_) {
    throw std::invalid_argument("ScriptedLinkDrop: null predicate");
  }
}

bool ScriptedLinkDrop::should_drop(const Packet& packet,
                                   const HopContext& hop) {
  // Link and predicate first: hops that cannot match never touch the budget,
  // so concurrent walks in other regions only read it.
  if (hop.from != from_ || hop.to != to_) return false;
  if (drops_.load(std::memory_order_relaxed) >= max_drops_) return false;
  if (!match_(packet)) return false;
  drops_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ScriptedLinkDrop::rearm(std::size_t max_drops) {
  drops_.store(0, std::memory_order_relaxed);
  max_drops_ = max_drops;
}

RandomDrop::RandomDrop(double rate, std::uint64_t seed, Predicate match)
    : rate_(rate), seed_(seed), match_(std::move(match)) {
  if (rate < 0.0 || rate > 1.0) {
    throw std::invalid_argument("RandomDrop: rate outside [0,1]");
  }
}

void RandomDrop::restrict_to(NodeId from, NodeId to) {
  restricted_ = true;
  from_ = from;
  to_ = to;
}

bool RandomDrop::should_drop(const Packet& packet, const HopContext& hop) {
  if (restricted_ && (hop.from != from_ || hop.to != to_)) return false;
  if (match_ && !match_(packet)) return false;
  // Pure function of (seed, directed edge, transmission): keyed_unit is in
  // [0, 1), so rate 0 never drops and rate 1 always does.
  if (util::keyed_unit(seed_, directed_edge_key(hop), hop.packet_ordinal,
                       kSaltRandomDrop) >= rate_) {
    return false;
  }
  drops_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void CompositeDrop::add(std::shared_ptr<DropPolicy> policy) {
  if (!policy) throw std::invalid_argument("CompositeDrop::add: null policy");
  policies_.push_back(std::move(policy));
}

bool CompositeDrop::should_drop(const Packet& packet, const HopContext& hop) {
  bool drop = false;
  // Every policy sees every hop so drop accounting stays complete even when
  // an earlier policy already decided to drop.
  for (const auto& p : policies_) {
    if (p->should_drop(packet, hop)) drop = true;
  }
  return drop;
}

void CompositeDrop::prepare(std::size_t link_count) {
  for (const auto& p : policies_) p->prepare(link_count);
}

GilbertElliottDrop::GilbertElliottDrop(Params params, std::uint64_t seed,
                                       Predicate match)
    : params_(params), seed_(seed), match_(std::move(match)) {
  const auto in_unit = [](double p) { return p >= 0.0 && p <= 1.0; };
  if (!in_unit(params_.p_good_bad) || !in_unit(params_.p_bad_good) ||
      !in_unit(params_.loss_good) || !in_unit(params_.loss_bad)) {
    throw std::invalid_argument(
        "GilbertElliottDrop: probability outside [0,1]");
  }
  if (!(params_.slot_dt > 0.0)) {
    throw std::invalid_argument("GilbertElliottDrop: slot_dt must be > 0");
  }
}

void GilbertElliottDrop::restrict_to(NodeId from, NodeId to) {
  restricted_ = true;
  from_ = from;
  to_ = to;
}

void GilbertElliottDrop::prepare(std::size_t link_count) {
  if (link_count <= chain_.size()) return;
  std::vector<std::atomic<std::uint64_t>> grown(link_count);
  for (std::size_t i = 0; i < chain_.size(); ++i) {
    grown[i].store(chain_[i].load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  }
  chain_ = std::move(grown);
}

bool GilbertElliottDrop::chain_state(LinkId link, std::uint64_t slot) {
  if (link >= chain_.size()) {
    // Lazy growth: only reachable when the policy is consulted without a
    // prepare() call (standalone use), which is sequential by construction —
    // the network always prepares at install time, before parallel walks.
    prepare(static_cast<std::size_t>(link) + 1);
  }
  std::atomic<std::uint64_t>& memo = chain_[link];
  const std::uint64_t cached = memo.load(std::memory_order_relaxed);
  std::uint64_t k = 0;
  bool bad = false;  // every link starts in the good state at slot 0
  if (cached != 0) {
    const std::uint64_t cached_slot = (cached >> 1) - 1;
    if (cached_slot <= slot) {
      k = cached_slot;
      bad = (cached & 1u) != 0;
    }
  }
  for (; k < slot; ++k) {
    const double flip = bad ? params_.p_bad_good : params_.p_good_bad;
    if (util::keyed_unit(seed_, link, k, kSaltGeTransition) < flip) {
      bad = !bad;
    }
  }
  memo.store(((slot + 1) << 1) | (bad ? 1u : 0u), std::memory_order_relaxed);
  return bad;
}

bool GilbertElliottDrop::in_bad_state(LinkId link, double at) {
  return chain_state(link, static_cast<std::uint64_t>(at / params_.slot_dt));
}

bool GilbertElliottDrop::should_drop(const Packet& packet,
                                     const HopContext& hop) {
  if (restricted_ && (hop.from != from_ || hop.to != to_)) return false;
  if (match_ && !match_(packet)) return false;
  const auto slot = static_cast<std::uint64_t>(hop.now / params_.slot_dt);
  const bool bad = chain_state(hop.link, slot);
  const double loss = bad ? params_.loss_bad : params_.loss_good;
  if (util::keyed_unit(seed_, directed_edge_key(hop), hop.packet_ordinal,
                       kSaltGeLoss) >= loss) {
    return false;
  }
  drops_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void CompositeDropPolicy::add(std::shared_ptr<DropPolicy> policy) {
  if (!policy) {
    throw std::invalid_argument("CompositeDropPolicy::add: null policy");
  }
  policies_.push_back(std::move(policy));
}

bool CompositeDropPolicy::should_drop(const Packet& packet,
                                      const HopContext& hop) {
  for (const auto& p : policies_) {
    if (p->should_drop(packet, hop)) return true;
  }
  return false;
}

void CompositeDropPolicy::prepare(std::size_t link_count) {
  for (const auto& p : policies_) p->prepare(link_count);
}

}  // namespace srm::net
