#include "net/drop_policy.h"

#include <stdexcept>
#include <utility>

namespace srm::net {

ScriptedLinkDrop::ScriptedLinkDrop(NodeId from, NodeId to, Predicate match,
                                   std::size_t max_drops)
    : from_(from), to_(to), match_(std::move(match)), max_drops_(max_drops) {
  if (!match_) {
    throw std::invalid_argument("ScriptedLinkDrop: null predicate");
  }
}

bool ScriptedLinkDrop::should_drop(const Packet& packet,
                                   const HopContext& hop) {
  // Link and predicate first: hops that cannot match never touch the budget,
  // so concurrent walks in other regions only read it.
  if (hop.from != from_ || hop.to != to_) return false;
  if (drops_.load(std::memory_order_relaxed) >= max_drops_) return false;
  if (!match_(packet)) return false;
  drops_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ScriptedLinkDrop::rearm(std::size_t max_drops) {
  drops_.store(0, std::memory_order_relaxed);
  max_drops_ = max_drops;
}

RandomDrop::RandomDrop(double rate, util::Rng rng, Predicate match)
    : rate_(rate), rng_(std::move(rng)), match_(std::move(match)) {
  if (rate < 0.0 || rate > 1.0) {
    throw std::invalid_argument("RandomDrop: rate outside [0,1]");
  }
}

void RandomDrop::restrict_to(NodeId from, NodeId to) {
  restricted_ = true;
  from_ = from;
  to_ = to;
}

bool RandomDrop::should_drop(const Packet& packet, const HopContext& hop) {
  if (restricted_ && (hop.from != from_ || hop.to != to_)) return false;
  if (match_ && !match_(packet)) return false;
  if (!rng_.chance(rate_)) return false;
  ++drops_;
  return true;
}

void CompositeDrop::add(std::shared_ptr<DropPolicy> policy) {
  if (!policy) throw std::invalid_argument("CompositeDrop::add: null policy");
  policies_.push_back(std::move(policy));
}

bool CompositeDrop::should_drop(const Packet& packet, const HopContext& hop) {
  bool drop = false;
  // Every policy sees every hop so stateful policies stay in sync even when
  // an earlier policy already decided to drop.
  for (const auto& p : policies_) {
    if (p->should_drop(packet, hop)) drop = true;
  }
  return drop;
}

GilbertElliottDrop::GilbertElliottDrop(Params params, util::Rng rng,
                                       Predicate match)
    : params_(params), rng_(std::move(rng)), match_(std::move(match)) {
  const auto in_unit = [](double p) { return p >= 0.0 && p <= 1.0; };
  if (!in_unit(params_.p_good_bad) || !in_unit(params_.p_bad_good) ||
      !in_unit(params_.loss_good) || !in_unit(params_.loss_bad)) {
    throw std::invalid_argument(
        "GilbertElliottDrop: probability outside [0,1]");
  }
}

void GilbertElliottDrop::restrict_to(NodeId from, NodeId to) {
  restricted_ = true;
  from_ = from;
  to_ = to;
}

bool GilbertElliottDrop::should_drop(const Packet& packet,
                                     const HopContext& hop) {
  if (restricted_ && (hop.from != from_ || hop.to != to_)) return false;
  if (match_ && !match_(packet)) return false;
  // Loss draw first (for the state we are in), then the transition draw.
  const bool drop = rng_.chance(bad_ ? params_.loss_bad : params_.loss_good);
  const bool flip = rng_.chance(bad_ ? params_.p_bad_good : params_.p_good_bad);
  if (flip) bad_ = !bad_;
  if (drop) ++drops_;
  return drop;
}

void CompositeDropPolicy::add(std::shared_ptr<DropPolicy> policy) {
  if (!policy) {
    throw std::invalid_argument("CompositeDropPolicy::add: null policy");
  }
  policies_.push_back(std::move(policy));
}

bool CompositeDropPolicy::should_drop(const Packet& packet,
                                      const HopContext& hop) {
  for (const auto& p : policies_) {
    if (p->should_drop(packet, hop)) return true;
  }
  return false;
}

}  // namespace srm::net
