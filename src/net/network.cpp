#include "net/network.h"

#include <algorithm>
#include <stdexcept>

namespace srm::net {

namespace {
const std::vector<NodeId> kNoMembers;

std::uint32_t kind_of(const Packet& packet) {
  return packet.payload ? packet.payload->trace_kind() : 0;
}
}  // namespace

MulticastNetwork::MulticastNetwork(sim::EventQueue& queue,
                                   const Topology& topo)
    : queue_(&queue),
      topo_(&topo),
      routing_(topo),
      sinks_(topo.node_count(), nullptr),
      drop_policy_(std::make_shared<NoDrop>()) {}

void MulticastNetwork::attach(NodeId n, PacketSink* sink) {
  if (sinks_.at(n) != nullptr) {
    throw std::logic_error("MulticastNetwork::attach: node already attached");
  }
  if (sink == nullptr) {
    throw std::invalid_argument("MulticastNetwork::attach: null sink");
  }
  sinks_[n] = sink;
}

void MulticastNetwork::detach(NodeId n) { sinks_.at(n) = nullptr; }

void MulticastNetwork::join(GroupId g, NodeId n) {
  if (n >= topo_->node_count()) {
    throw std::out_of_range("MulticastNetwork::join: bad node");
  }
  GroupState& group = groups_[g];
  if (group.bits.empty()) {
    group.bits.assign((topo_->node_count() + 63) / 64, 0);
  }
  if (group.test(n)) return;
  group.bits[n >> 6] |= std::uint64_t{1} << (n & 63);
  group.sorted.insert(
      std::lower_bound(group.sorted.begin(), group.sorted.end(), n), n);
  ++membership_version_;
}

void MulticastNetwork::leave(GroupId g, NodeId n) {
  const auto it = groups_.find(g);
  if (it == groups_.end() || n >= topo_->node_count() || !it->second.test(n)) {
    return;
  }
  GroupState& group = it->second;
  group.bits[n >> 6] &= ~(std::uint64_t{1} << (n & 63));
  group.sorted.erase(
      std::lower_bound(group.sorted.begin(), group.sorted.end(), n));
  ++membership_version_;
}

bool MulticastNetwork::is_member(GroupId g, NodeId n) const {
  const auto it = groups_.find(g);
  return it != groups_.end() && n < topo_->node_count() && it->second.test(n);
}

const std::vector<NodeId>& MulticastNetwork::members(GroupId g) const {
  const auto it = groups_.find(g);
  return it != groups_.end() ? it->second.sorted : kNoMembers;
}

void MulticastNetwork::set_drop_policy(std::shared_ptr<DropPolicy> policy) {
  drop_policy_ = policy ? std::move(policy) : std::make_shared<NoDrop>();
}

const MulticastNetwork::PrunedTree& MulticastNetwork::pruned(NodeId root,
                                                             GroupId group) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(root) << 32) | static_cast<std::uint64_t>(group);
  PrunedTree& entry = pruned_cache_[key];
  if (entry.membership_version == membership_version_ &&
      entry.topology_version == topo_->version()) {
    return entry;
  }

  const Spt& t = routing_.spt(root);
  entry.membership_version = membership_version_;
  entry.topology_version = topo_->version();
  entry.steps.clear();
  entry.edges.clear();

  // need[n]: node n lies on a path from the root to some group member.
  need_scratch_.assign(topo_->node_count(), false);
  const auto git = groups_.find(group);
  const GroupState* gs = git != groups_.end() ? &git->second : nullptr;
  if (gs != nullptr) {
    for (NodeId m : gs->sorted) {
      // Mark the path from the member back to the root; stop early when we
      // reach an already-marked node (shared prefix).
      NodeId v = m;
      while (!need_scratch_[v]) {
        need_scratch_[v] = true;
        if (v == root) break;
        if (t.parent[v] == kInvalidNode) break;  // unreachable member
        v = t.parent[v];
      }
    }
  }

  // Flatten the needed subtree in the stack-DFS order described in the
  // header.  parents[] remembers each step's parent step for the
  // subtree-extent pass below.
  struct BuildFrame {
    NodeId node;
    std::uint32_t parent_step;
  };
  std::vector<BuildFrame> stack;
  std::vector<std::uint32_t> parents;
  stack.push_back(BuildFrame{root, 0});
  while (!stack.empty()) {
    const BuildFrame f = stack.back();
    stack.pop_back();
    const auto step_index = static_cast<std::uint32_t>(entry.steps.size());
    TraceStep step;
    step.node = f.node;
    step.member = f.node != root && gs != nullptr && gs->test(f.node);
    step.subtree_end = step_index + 1;
    step.first_edge = static_cast<std::uint32_t>(entry.edges.size());
    step.edge_count = 0;
    for (NodeId child : t.children[f.node]) {
      if (!need_scratch_[child]) continue;
      const Link& l = topo_->link(t.parent_link[child]);
      TraceEdge edge;
      edge.child = child;
      edge.link = t.parent_link[child];
      edge.delay = l.delay;
      edge.threshold = l.threshold;
      edge.child_step = 0;  // patched when the child's step is emitted
      entry.edges.push_back(edge);
      stack.push_back(BuildFrame{child, step_index});
      ++step.edge_count;
    }
    entry.steps.push_back(step);
    parents.push_back(f.parent_step);
    if (f.node != root) {
      // Patch the parent's edge that leads here.  Edges of one parent are
      // consulted in SPT-children order but their subtrees are emitted in
      // reverse (stack order), so search the parent's edge range.
      TraceStep& p = entry.steps[f.parent_step];
      for (std::uint32_t e = p.first_edge; e < p.first_edge + p.edge_count;
           ++e) {
        if (entry.edges[e].child == f.node) {
          entry.edges[e].child_step = step_index;
          break;
        }
      }
    }
  }
  // Subtree extents: children always follow their parent, so a reverse scan
  // folds each step's extent into its parent's.
  for (std::uint32_t i = static_cast<std::uint32_t>(entry.steps.size()); i > 1;
       --i) {
    const std::uint32_t j = i - 1;
    TraceStep& p = entry.steps[parents[j]];
    p.subtree_end = std::max(p.subtree_end, entry.steps[j].subtree_end);
  }
  return entry;
}

bool MulticastNetwork::hop_allowed(const Packet& packet, int ttl_at_from,
                                   const LinkEnd& edge, NodeId from) {
  const auto trace_hop = [&](trace::EventType type, std::uint64_t d) {
    if (!tracer_->wants(trace::Category::kNet)) return;
    trace::Event ev;
    ev.type = type;
    ev.t = queue_->now();
    ev.actor = from;
    ev.a = packet.group;
    ev.b = kind_of(packet);
    ev.c = edge.peer;
    ev.d = d;
    tracer_->emit(ev);
  };
  // Mbone forwarding rule: a packet is forwarded on a link only if its TTL
  // is at least the link's threshold (Sec. VII-B.3).
  if (ttl_at_from < 1 || ttl_at_from < edge.threshold) {
    ++stats_.ttl_prunes;
    trace_hop(trace::EventType::kNetPrune,
              static_cast<std::uint64_t>(ttl_at_from));
    return false;
  }
  // Administrative scoping confines the packet to the sender's region.
  if (packet.scope == Scope::kAdmin &&
      topo_->admin_region(edge.peer) != topo_->admin_region(packet.source)) {
    ++stats_.ttl_prunes;
    trace_hop(trace::EventType::kNetPrune,
              static_cast<std::uint64_t>(ttl_at_from));
    return false;
  }
  const HopContext hop{edge.link, from, edge.peer};
  // Primary policy first; the fault slot is only consulted when the primary
  // passes, so a scripted round drop does not also advance burst-loss state.
  if (drop_policy_->should_drop(packet, hop) ||
      (fault_drop_policy_ && fault_drop_policy_->should_drop(packet, hop))) {
    ++stats_.drops;
    trace_hop(trace::EventType::kNetDrop, edge.link);
    return false;
  }
  ++stats_.link_transmissions;
  return true;
}

void MulticastNetwork::schedule_delivery(
    const std::shared_ptr<const Packet>& packet, NodeId to, double delay,
    int hops_taken) {
  PacketSink* sink = sinks_.at(to);
  if (sink == nullptr) return;
  std::uint32_t index;
  if (!free_deliveries_.empty()) {
    index = free_deliveries_.back();
    free_deliveries_.pop_back();
  } else {
    index = static_cast<std::uint32_t>(delivery_pool_.size());
    delivery_pool_.emplace_back();
  }
  PendingDelivery& pd = delivery_pool_[index];
  pd.packet = packet;
  pd.info.receiver = to;
  pd.info.path_delay = delay;
  pd.info.hops = hops_taken;
  pd.info.remaining_ttl = packet->ttl - hops_taken;
  pd.dropped = false;
  ++stats_.deliveries;
  // [this, index] fits std::function's inline buffer: no allocation per
  // receiver, and the Packet is shared rather than copied per closure.
  queue_->schedule_after(delay, [this, index] { fire_delivery(index); });
}

void MulticastNetwork::fire_delivery(std::uint32_t index) {
  PendingDelivery& pd = delivery_pool_[index];
  const std::shared_ptr<const Packet> packet = std::move(pd.packet);
  const DeliveryInfo info = pd.info;
  const bool dropped = pd.dropped;
  free_deliveries_.push_back(index);  // freed first: the sink may multicast
  // Re-resolve the sink: the receiver may have detached (member crash or
  // leave) after this delivery was scheduled.
  PacketSink* const sink = sinks_[info.receiver];
  if (dropped) return;
  if (sink == nullptr) {
    --stats_.deliveries;
    ++stats_.in_flight_invalidated;
    return;
  }
  if (tracer_->wants(trace::Category::kNet)) {
    trace::Event ev;
    ev.type = trace::EventType::kNetDeliver;
    ev.t = queue_->now();
    ev.actor = info.receiver;
    ev.a = packet->group;
    ev.b = kind_of(*packet);
    ev.c = packet->source;
    ev.d = static_cast<std::uint64_t>(info.hops);
    ev.x = info.path_delay;
    tracer_->emit(ev);
  }
  sink->on_receive(*packet, info);
  if (delivery_observer_) delivery_observer_(*packet, info);
}

void MulticastNetwork::multicast(NodeId from, Packet packet) {
  if (from >= topo_->node_count()) {
    throw std::out_of_range("MulticastNetwork::multicast: bad sender");
  }
  packet.source = from;
  ++stats_.multicasts_sent;
  if (send_observer_) send_observer_(from, packet);
  if (tracer_->wants(trace::Category::kNet)) {
    trace::Event ev;
    ev.type = trace::EventType::kNetSend;
    ev.t = queue_->now();
    ev.actor = from;
    ev.a = packet.group;
    ev.b = kind_of(packet);
    ev.c = static_cast<std::uint64_t>(packet.ttl);
    ev.d = static_cast<std::uint64_t>(packet.scope);
    tracer_->emit(ev);
  }

  const PrunedTree& tree = pruned(from, packet.group);
  const auto shared = std::make_shared<const Packet>(std::move(packet));
  const Packet& pkt = *shared;

  std::uint32_t chain_index;
  if (!free_chains_.empty()) {
    chain_index = free_chains_.back();
    free_chains_.pop_back();
  } else {
    chain_index = static_cast<std::uint32_t>(chain_pool_.size());
    chain_pool_.emplace_back();
  }
  DeliveryChain& chain = chain_pool_[chain_index];
  chain.packet = shared;
  chain.cursor = 0;

  // Linear walk of the flattened tree.  Each directed link is traversed
  // (and the drop policy consulted) at most once; a suppressed hop skips
  // its whole subtree via the precomputed extent.
  walk_scratch_.resize(tree.steps.size());
  walk_scratch_[0] = WalkState{0.0, pkt.ttl, 0, false};
  std::uint32_t i = 0;
  const auto step_count = static_cast<std::uint32_t>(tree.steps.size());
  while (i < step_count) {
    const TraceStep& s = tree.steps[i];
    const WalkState st = walk_scratch_[i];
    if (st.blocked) {
      i = s.subtree_end;
      continue;
    }
    if (s.member && sinks_[s.node] != nullptr) {
      chain.items.push_back(ChainItem{st.delay, 0, s.node, st.hops});
      ++stats_.deliveries;
    }
    for (std::uint32_t e = s.first_edge; e < s.first_edge + s.edge_count;
         ++e) {
      const TraceEdge& edge = tree.edges[e];
      WalkState& child = walk_scratch_[edge.child_step];
      if (hop_allowed(pkt, st.ttl,
                      LinkEnd{edge.child, edge.link, edge.delay,
                              edge.threshold},
                      s.node)) {
        child = WalkState{st.delay + edge.delay, st.ttl - 1, st.hops + 1,
                          false};
      } else {
        child.blocked = true;
      }
    }
    ++i;
  }
  dispatch_chain(chain_index, queue_->now());
}

void MulticastNetwork::dispatch_chain(std::uint32_t index, double sent_at) {
  DeliveryChain& chain = chain_pool_[index];
  if (chain.items.empty()) {
    chain.packet = nullptr;
    free_chains_.push_back(index);
    return;
  }
  chain.sent_at = sent_at;
  // The walk collected receivers in trace order, which is exactly the order
  // eager scheduling would have drawn sequence numbers in; assigning the
  // reserved block in that same order and then sorting by (delay, seq)
  // reproduces the eager scheme's delivery order bit-for-bit.
  const std::uint64_t base = queue_->allocate_seqs(chain.items.size());
  for (std::size_t i = 0; i < chain.items.size(); ++i) {
    chain.items[i].seq = base + i;
  }
  std::sort(chain.items.begin(), chain.items.end(),
            [](const ChainItem& a, const ChainItem& b) {
              if (a.delay != b.delay) return a.delay < b.delay;
              return a.seq < b.seq;
            });
  queue_->schedule_at_seq(sent_at + chain.items.front().delay,
                          chain.items.front().seq,
                          [this, index] { fire_chain(index); });
}

void MulticastNetwork::fire_chain(std::uint32_t index) {
  DeliveryChain& chain = chain_pool_[index];
  const ChainItem item = chain.items[chain.cursor++];
  std::shared_ptr<const Packet> packet;
  if (chain.cursor < chain.items.size()) {
    packet = chain.packet;
    const ChainItem& next = chain.items[chain.cursor];
    queue_->schedule_at_seq(chain.sent_at + next.delay, next.seq,
                            [this, index] { fire_chain(index); });
  } else {
    // Freed first: the sink may multicast and recycle this very chain.
    packet = std::move(chain.packet);
    chain.items.clear();
    free_chains_.push_back(index);
  }
  if (item.dropped) return;  // invalidated by a link failure while in flight
  // Re-resolve the sink at fire time: the receiver may have detached
  // (member crash or leave) after this chain was built.
  PacketSink* const sink = sinks_[item.to];
  if (sink == nullptr) {
    --stats_.deliveries;
    ++stats_.in_flight_invalidated;
    return;
  }
  DeliveryInfo info;
  info.receiver = item.to;
  info.path_delay = item.delay;
  info.hops = item.hops;
  info.remaining_ttl = packet->ttl - item.hops;
  if (tracer_->wants(trace::Category::kNet)) {
    trace::Event ev;
    ev.type = trace::EventType::kNetDeliver;
    ev.t = queue_->now();
    ev.actor = info.receiver;
    ev.a = packet->group;
    ev.b = kind_of(*packet);
    ev.c = packet->source;
    ev.d = static_cast<std::uint64_t>(info.hops);
    ev.x = info.path_delay;
    tracer_->emit(ev);
  }
  sink->on_receive(*packet, info);
  if (delivery_observer_) delivery_observer_(*packet, info);
}

bool MulticastNetwork::path_uses_link(NodeId src, NodeId dst, LinkId link) {
  const Spt& t = routing_.spt(src);
  for (NodeId v = dst; v != src;) {
    if (v >= t.parent.size() || t.parent[v] == kInvalidNode) return false;
    if (t.parent_link[v] == link) return true;
    v = t.parent[v];
  }
  return false;
}

void MulticastNetwork::invalidate_in_flight(LinkId link) {
  for (DeliveryChain& chain : chain_pool_) {
    if (!chain.packet) continue;
    for (std::uint32_t i = chain.cursor;
         i < static_cast<std::uint32_t>(chain.items.size()); ++i) {
      ChainItem& item = chain.items[i];
      if (item.dropped) continue;
      if (path_uses_link(chain.packet->source, item.to, link)) {
        item.dropped = true;
        --stats_.deliveries;
        ++stats_.in_flight_invalidated;
      }
    }
  }
  for (PendingDelivery& pd : delivery_pool_) {
    if (!pd.packet || pd.dropped) continue;
    if (path_uses_link(pd.packet->source, pd.info.receiver, link)) {
      pd.dropped = true;
      --stats_.deliveries;
      ++stats_.in_flight_invalidated;
    }
  }
}

void MulticastNetwork::unicast(NodeId from, NodeId to, Packet packet) {
  packet.source = from;
  ++stats_.unicasts_sent;
  if (send_observer_) send_observer_(from, packet);
  if (tracer_->wants(trace::Category::kNet)) {
    trace::Event ev;
    ev.type = trace::EventType::kNetSend;
    ev.t = queue_->now();
    ev.actor = from;
    ev.a = packet.group;
    ev.b = kind_of(packet);
    ev.c = static_cast<std::uint64_t>(packet.ttl);
    ev.d = static_cast<std::uint64_t>(packet.scope);
    tracer_->emit(ev);
  }

  const std::vector<NodeId> p = routing_.path(from, to);
  double delay = 0.0;
  int ttl = packet.ttl;
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    const LinkId lid = topo_->link_between(p[i], p[i + 1]);
    const Link& l = topo_->link(lid);
    LinkEnd edge{p[i + 1], lid, l.delay, l.threshold};
    if (!hop_allowed(packet, ttl, edge, p[i])) return;  // dropped en route
    delay += l.delay;
    --ttl;
  }
  const auto shared = std::make_shared<const Packet>(std::move(packet));
  schedule_delivery(shared, to, delay, static_cast<int>(p.size()) - 1);
}

}  // namespace srm::net
