#include "net/network.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <stdexcept>

namespace srm::net {

namespace {
const std::vector<NodeId> kNoMembers;

std::uint32_t kind_of(const Packet& packet) {
  return packet.payload ? packet.payload->trace_kind() : 0;
}
}  // namespace

MulticastNetwork::MulticastNetwork(sim::EventQueue& queue,
                                   const Topology& topo)
    : queue_(&queue),
      topo_(&topo),
      routing_(topo),
      sinks_(topo.node_count(), nullptr),
      drop_policy_(std::make_shared<NoDrop>()),
      attached_(topo.node_count(), 0),
      send_ordinal_(topo.node_count(), 0) {}

void MulticastNetwork::enable_pdes(sim::ParallelKernel* kernel,
                                   const RegionMap* map,
                                   std::uint32_t self_region,
                                   std::vector<MulticastNetwork*> peers) {
  kernel_ = kernel;
  region_map_ = map;
  self_region_ = self_region;
  peers_ = std::move(peers);
  inboxes_.assign(map->count, {});
  remote_buckets_.assign(map->count, {});
  kernel->set_drain_hook(self_region, [this] { drain_remote(); });
}

void MulticastNetwork::attach(NodeId n, PacketSink* sink) {
  if (sinks_.at(n) != nullptr) {
    throw std::logic_error("MulticastNetwork::attach: node already attached");
  }
  if (sink == nullptr) {
    throw std::invalid_argument("MulticastNetwork::attach: null sink");
  }
  assert(region_map_ == nullptr || region_map_->of[n] == self_region_);
  sinks_[n] = sink;
  if (peers_.empty()) {
    attached_[n] = 1;
  } else {
    for (MulticastNetwork* p : peers_) p->attached_[n] = 1;
  }
}

void MulticastNetwork::detach(NodeId n) {
  sinks_.at(n) = nullptr;
  if (peers_.empty()) {
    attached_[n] = 0;
  } else {
    for (MulticastNetwork* p : peers_) p->attached_[n] = 0;
  }
}

void MulticastNetwork::join(GroupId g, NodeId n) {
  if (peers_.empty()) {
    join_local(g, n);
    return;
  }
  for (MulticastNetwork* p : peers_) p->join_local(g, n);
}

void MulticastNetwork::leave(GroupId g, NodeId n) {
  if (peers_.empty()) {
    leave_local(g, n);
    return;
  }
  for (MulticastNetwork* p : peers_) p->leave_local(g, n);
}

void MulticastNetwork::join_local(GroupId g, NodeId n) {
  if (n >= topo_->node_count()) {
    throw std::out_of_range("MulticastNetwork::join: bad node");
  }
  GroupState& group = groups_[g];
  if (group.bits.empty()) {
    group.bits.assign((topo_->node_count() + 63) / 64, 0);
  }
  if (group.test(n)) return;
  group.bits[n >> 6] |= std::uint64_t{1} << (n & 63);
  group.sorted.insert(
      std::lower_bound(group.sorted.begin(), group.sorted.end(), n), n);
  ++membership_version_;
}

void MulticastNetwork::leave_local(GroupId g, NodeId n) {
  const auto it = groups_.find(g);
  if (it == groups_.end() || n >= topo_->node_count() || !it->second.test(n)) {
    return;
  }
  GroupState& group = it->second;
  group.bits[n >> 6] &= ~(std::uint64_t{1} << (n & 63));
  group.sorted.erase(
      std::lower_bound(group.sorted.begin(), group.sorted.end(), n));
  ++membership_version_;
}

bool MulticastNetwork::is_member(GroupId g, NodeId n) const {
  const auto it = groups_.find(g);
  return it != groups_.end() && n < topo_->node_count() && it->second.test(n);
}

const std::vector<NodeId>& MulticastNetwork::members(GroupId g) const {
  const auto it = groups_.find(g);
  return it != groups_.end() ? it->second.sorted : kNoMembers;
}

void MulticastNetwork::set_drop_policy(std::shared_ptr<DropPolicy> policy) {
  // Size any per-link policy state now, while no walk is consulting it
  // (installation is only legal from setup or a serialized phase).
  if (policy) policy->prepare(topo_->link_count());
  if (peers_.empty()) {
    set_drop_policy_local(std::move(policy));
    return;
  }
  // Every region consults the same policy object: stateful budgets count
  // globally exactly as they do sequentially, and every stochastic policy
  // keys its draws by stable hop coordinates (drop_policy.h), so sharing
  // the object across concurrent walks is race-free.
  for (MulticastNetwork* p : peers_) p->set_drop_policy_local(policy);
}

void MulticastNetwork::set_drop_policy_local(
    std::shared_ptr<DropPolicy> policy) {
  drop_policy_ = policy ? std::move(policy) : std::make_shared<NoDrop>();
}

void MulticastNetwork::set_fault_drop_policy(
    std::shared_ptr<DropPolicy> policy) {
  if (policy) policy->prepare(topo_->link_count());
  if (peers_.empty()) {
    fault_drop_policy_ = std::move(policy);
    return;
  }
  for (MulticastNetwork* p : peers_) p->fault_drop_policy_ = policy;
}

const MulticastNetwork::PrunedTree& MulticastNetwork::pruned(NodeId root,
                                                             GroupId group) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(root) << 32) | static_cast<std::uint64_t>(group);
  PrunedTree& entry = pruned_cache_[key];
  if (entry.membership_version == membership_version_ &&
      entry.topology_version == topo_->version()) {
    return entry;
  }

  const Spt& t = routing_.spt(root);
  entry.membership_version = membership_version_;
  entry.topology_version = topo_->version();
  entry.steps.clear();
  entry.edges.clear();

  // need[n]: node n lies on a path from the root to some group member.
  need_scratch_.assign(topo_->node_count(), false);
  const auto git = groups_.find(group);
  const GroupState* gs = git != groups_.end() ? &git->second : nullptr;
  if (gs != nullptr) {
    for (NodeId m : gs->sorted) {
      // Mark the path from the member back to the root; stop early when we
      // reach an already-marked node (shared prefix).
      NodeId v = m;
      while (!need_scratch_[v]) {
        need_scratch_[v] = true;
        if (v == root) break;
        if (t.parent[v] == kInvalidNode) break;  // unreachable member
        v = t.parent[v];
      }
    }
  }

  // Flatten the needed subtree in the stack-DFS order described in the
  // header.  parents[] remembers each step's parent step for the
  // subtree-extent pass below.
  struct BuildFrame {
    NodeId node;
    std::uint32_t parent_step;
  };
  std::vector<BuildFrame> stack;
  std::vector<std::uint32_t> parents;
  stack.push_back(BuildFrame{root, 0});
  while (!stack.empty()) {
    const BuildFrame f = stack.back();
    stack.pop_back();
    const auto step_index = static_cast<std::uint32_t>(entry.steps.size());
    TraceStep step;
    step.node = f.node;
    step.member = f.node != root && gs != nullptr && gs->test(f.node);
    step.subtree_end = step_index + 1;
    step.first_edge = static_cast<std::uint32_t>(entry.edges.size());
    step.edge_count = 0;
    for (NodeId child : t.children[f.node]) {
      if (!need_scratch_[child]) continue;
      const Link& l = topo_->link(t.parent_link[child]);
      TraceEdge edge;
      edge.child = child;
      edge.link = t.parent_link[child];
      edge.delay = l.delay;
      edge.threshold = l.threshold;
      edge.child_step = 0;  // patched when the child's step is emitted
      entry.edges.push_back(edge);
      stack.push_back(BuildFrame{child, step_index});
      ++step.edge_count;
    }
    entry.steps.push_back(step);
    parents.push_back(f.parent_step);
    if (f.node != root) {
      // Patch the parent's edge that leads here.  Edges of one parent are
      // consulted in SPT-children order but their subtrees are emitted in
      // reverse (stack order), so search the parent's edge range.
      TraceStep& p = entry.steps[f.parent_step];
      for (std::uint32_t e = p.first_edge; e < p.first_edge + p.edge_count;
           ++e) {
        if (entry.edges[e].child == f.node) {
          entry.edges[e].child_step = step_index;
          break;
        }
      }
    }
  }
  // Subtree extents: children always follow their parent, so a reverse scan
  // folds each step's extent into its parent's.
  for (std::uint32_t i = static_cast<std::uint32_t>(entry.steps.size()); i > 1;
       --i) {
    const std::uint32_t j = i - 1;
    TraceStep& p = entry.steps[parents[j]];
    p.subtree_end = std::max(p.subtree_end, entry.steps[j].subtree_end);
  }
  return entry;
}

const MulticastNetwork::PrunedTree& MulticastNetwork::pruned_scoped(
    NodeId root, GroupId group, int ttl) {
  PrunedTree& entry = scoped_cache_[std::make_tuple(root, group, ttl)];
  if (entry.membership_version == membership_version_ &&
      entry.topology_version == topo_->version()) {
    return entry;
  }
  entry.membership_version = membership_version_;
  entry.topology_version = topo_->version();
  entry.steps.clear();
  entry.edges.clear();

  const std::size_t n = topo_->node_count();
  if (scoped_stamp_.size() < n) {
    scoped_stamp_.resize(n, 0);
    scoped_done_.resize(n, 0);
    scoped_need_.resize(n, 0);
    scoped_dist_.resize(n, 0.0);
    scoped_hops_.resize(n, 0);
    scoped_parent_.resize(n, kInvalidNode);
    scoped_parent_link_.resize(n, 0);
  }
  const std::uint64_t gen = ++scoped_gen_;
  scoped_visited_.clear();
  scoped_children_.clear();

  // TTL-truncated Dijkstra with the canonical (dist, hops, node) keys and
  // (delay, hops, parent-id) improvement predicate of Routing::compute().
  // A finalized node's key is identical to the full SPT's whenever its
  // canonical hop depth is <= ttl (all its tree ancestors are shallower, so
  // truncation never hides the winning offer); only nodes within ttl hops
  // are ever finalized, and only nodes strictly inside the radius expand.
  using Key = std::tuple<double, int, NodeId>;
  std::priority_queue<Key, std::vector<Key>, std::greater<>> pq;
  scoped_stamp_[root] = gen;
  scoped_dist_[root] = 0.0;
  scoped_hops_[root] = 0;
  scoped_parent_[root] = root;
  pq.emplace(0.0, 0, root);
  while (!pq.empty()) {
    const auto [d, h, u] = pq.top();
    pq.pop();
    if (scoped_done_[u] == gen) continue;
    scoped_done_[u] = gen;
    scoped_visited_.push_back(u);
    if (h >= ttl) continue;  // within radius but must not expand further
    for (const LinkEnd& e : topo_->neighbors(u)) {
      const double nd = d + e.delay;
      const int nh = h + 1;
      const bool fresh = scoped_stamp_[e.peer] != gen;
      const bool better =
          fresh || nd < scoped_dist_[e.peer] ||
          (nd == scoped_dist_[e.peer] &&
           (nh < scoped_hops_[e.peer] ||
            (nh == scoped_hops_[e.peer] && u < scoped_parent_[e.peer])));
      if (scoped_done_[e.peer] != gen && better) {
        scoped_stamp_[e.peer] = gen;
        scoped_dist_[e.peer] = nd;
        scoped_hops_[e.peer] = nh;
        scoped_parent_[e.peer] = u;
        scoped_parent_link_[e.peer] = e.link;
        pq.emplace(nd, nh, e.peer);
      }
    }
  }

  // need-mark the path of every in-radius member back to the root; iterate
  // visited nodes (O(radius)), never the whole membership.
  const auto git = groups_.find(group);
  const GroupState* gs = git != groups_.end() ? &git->second : nullptr;
  if (gs != nullptr) {
    for (NodeId m : scoped_visited_) {
      if (!gs->test(m)) continue;
      NodeId v = m;
      while (scoped_need_[v] != gen) {
        scoped_need_[v] = gen;
        if (v == root) break;
        v = scoped_parent_[v];
      }
    }
  }

  // Children lists in canonical (ascending child id per parent) order, as a
  // sorted pair vector consumed via equal_range during the flatten.
  for (NodeId v : scoped_visited_) {
    if (v != root && scoped_need_[v] == gen) {
      scoped_children_.emplace_back(scoped_parent_[v], v);
    }
  }
  std::sort(scoped_children_.begin(), scoped_children_.end());

  // Flatten in the exact stack-DFS order pruned() uses.
  struct BuildFrame {
    NodeId node;
    std::uint32_t parent_step;
  };
  std::vector<BuildFrame> stack;
  std::vector<std::uint32_t> parents;
  if (scoped_need_[root] == gen) stack.push_back(BuildFrame{root, 0});
  while (!stack.empty()) {
    const BuildFrame f = stack.back();
    stack.pop_back();
    const auto step_index = static_cast<std::uint32_t>(entry.steps.size());
    TraceStep step;
    step.node = f.node;
    step.member = f.node != root && gs != nullptr && gs->test(f.node);
    step.subtree_end = step_index + 1;
    step.first_edge = static_cast<std::uint32_t>(entry.edges.size());
    step.edge_count = 0;
    const auto range = std::equal_range(
        scoped_children_.begin(), scoped_children_.end(),
        std::make_pair(f.node, NodeId{0}),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto it = range.first; it != range.second; ++it) {
      const NodeId child = it->second;
      const Link& l = topo_->link(scoped_parent_link_[child]);
      TraceEdge edge;
      edge.child = child;
      edge.link = scoped_parent_link_[child];
      edge.delay = l.delay;
      edge.threshold = l.threshold;
      edge.child_step = 0;  // patched when the child's step is emitted
      entry.edges.push_back(edge);
      stack.push_back(BuildFrame{child, step_index});
      ++step.edge_count;
    }
    entry.steps.push_back(step);
    parents.push_back(f.parent_step);
    if (f.node != root) {
      TraceStep& p = entry.steps[f.parent_step];
      for (std::uint32_t e = p.first_edge; e < p.first_edge + p.edge_count;
           ++e) {
        if (entry.edges[e].child == f.node) {
          entry.edges[e].child_step = step_index;
          break;
        }
      }
    }
  }
  for (std::uint32_t i = static_cast<std::uint32_t>(entry.steps.size()); i > 1;
       --i) {
    const std::uint32_t j = i - 1;
    TraceStep& p = entry.steps[parents[j]];
    p.subtree_end = std::max(p.subtree_end, entry.steps[j].subtree_end);
  }
  // An empty scoped tree (no in-radius member) still needs the root step so
  // multicast()'s walk can run unconditionally.
  if (entry.steps.empty()) {
    entry.steps.push_back(TraceStep{root, false, 1, 0, 0});
  }
  return entry;
}

bool MulticastNetwork::hop_allowed(const Packet& packet, int ttl_at_from,
                                   const LinkEnd& edge, NodeId from,
                                   std::uint64_t packet_ordinal) {
  const auto trace_hop = [&](trace::EventType type, std::uint64_t d) {
    if (!tracer_->wants(trace::Category::kNet)) return;
    trace::Event ev;
    ev.type = type;
    ev.t = queue_->now();
    ev.actor = from;
    ev.a = packet.group;
    ev.b = kind_of(packet);
    ev.c = edge.peer;
    ev.d = d;
    tracer_->emit(ev);
  };
  // Mbone forwarding rule: a packet is forwarded on a link only if its TTL
  // is at least the link's threshold (Sec. VII-B.3).
  if (ttl_at_from < 1 || ttl_at_from < edge.threshold) {
    ++stats_.ttl_prunes;
    trace_hop(trace::EventType::kNetPrune,
              static_cast<std::uint64_t>(ttl_at_from));
    return false;
  }
  // Administrative scoping confines the packet to the sender's region.
  if (packet.scope == Scope::kAdmin &&
      topo_->admin_region(edge.peer) != topo_->admin_region(packet.source)) {
    ++stats_.ttl_prunes;
    trace_hop(trace::EventType::kNetPrune,
              static_cast<std::uint64_t>(ttl_at_from));
    return false;
  }
  // The walk consults at send time, so queue_->now() and the per-source
  // transmission ordinal are stable coordinates for keyed stochastic draws —
  // identical in the sequential and parallel kernels.
  const HopContext hop{edge.link, from, edge.peer, packet_ordinal,
                       queue_->now()};
  // Primary policy first; the fault slot is only consulted when the primary
  // passes, so a scripted round drop does not also advance burst-loss state.
  if (drop_policy_->should_drop(packet, hop) ||
      (fault_drop_policy_ && fault_drop_policy_->should_drop(packet, hop))) {
    ++stats_.drops;
    trace_hop(trace::EventType::kNetDrop, edge.link);
    return false;
  }
  ++stats_.link_transmissions;
  return true;
}

void MulticastNetwork::schedule_delivery(
    const std::shared_ptr<const Packet>& packet, NodeId to, double delay,
    int hops_taken) {
  PacketSink* sink = sinks_.at(to);
  if (sink == nullptr) return;
  std::uint32_t index;
  if (!free_deliveries_.empty()) {
    index = free_deliveries_.back();
    free_deliveries_.pop_back();
  } else {
    index = static_cast<std::uint32_t>(delivery_pool_.size());
    delivery_pool_.emplace_back();
  }
  PendingDelivery& pd = delivery_pool_[index];
  pd.packet = packet;
  pd.info.receiver = to;
  pd.info.path_delay = delay;
  pd.info.hops = hops_taken;
  pd.info.remaining_ttl = packet->ttl - hops_taken;
  pd.dropped = false;
  ++stats_.deliveries;
  // [this, index] fits std::function's inline buffer: no allocation per
  // receiver, and the Packet is shared rather than copied per closure.
  queue_->schedule_after(delay, [this, index] { fire_delivery(index); });
}

void MulticastNetwork::fire_delivery(std::uint32_t index) {
  PendingDelivery& pd = delivery_pool_[index];
  const std::shared_ptr<const Packet> packet = std::move(pd.packet);
  const DeliveryInfo info = pd.info;
  const bool dropped = pd.dropped;
  free_deliveries_.push_back(index);  // freed first: the sink may multicast
  // Re-resolve the sink: the receiver may have detached (member crash or
  // leave) after this delivery was scheduled.
  PacketSink* const sink = sinks_[info.receiver];
  if (dropped) return;
  if (sink == nullptr) {
    --stats_.deliveries;
    ++stats_.in_flight_invalidated;
    return;
  }
  if (tracer_->wants(trace::Category::kNet)) {
    trace::Event ev;
    ev.type = trace::EventType::kNetDeliver;
    ev.t = queue_->now();
    ev.actor = info.receiver;
    ev.a = packet->group;
    ev.b = kind_of(*packet);
    ev.c = packet->source;
    ev.d = static_cast<std::uint64_t>(info.hops);
    ev.x = info.path_delay;
    tracer_->emit(ev);
  }
  sink->on_receive(*packet, info);
  if (delivery_observer_) delivery_observer_(*packet, info);
}

void MulticastNetwork::multicast(NodeId from, Packet packet) {
  if (from >= topo_->node_count()) {
    throw std::out_of_range("MulticastNetwork::multicast: bad sender");
  }
  packet.source = from;
  ++stats_.multicasts_sent;
  // Per-source transmission ordinal: a node's sends execute in the same
  // order under every kernel (its events all live in its own region's
  // queue), so this counter is a stable coordinate for keyed drop draws.
  const std::uint64_t packet_ordinal = next_send_ordinal(from);
  if (send_observer_) send_observer_(from, packet);
  if (tracer_->wants(trace::Category::kNet)) {
    trace::Event ev;
    ev.type = trace::EventType::kNetSend;
    ev.t = queue_->now();
    ev.actor = from;
    ev.a = packet.group;
    ev.b = kind_of(packet);
    ev.c = static_cast<std::uint64_t>(packet.ttl);
    ev.d = static_cast<std::uint64_t>(packet.scope);
    tracer_->emit(ev);
  }

  const bool scoped = scoped_trees_enabled_ && packet.ttl < kMaxTtl &&
                      packet.scope == Scope::kGlobal;
  const PrunedTree& tree = scoped ? pruned_scoped(from, packet.group, packet.ttl)
                                  : pruned(from, packet.group);
  const auto shared = std::make_shared<const Packet>(std::move(packet));
  const Packet& pkt = *shared;

  const std::uint32_t chain_index = acquire_chain();
  DeliveryChain& chain = chain_pool_[chain_index];
  chain.packet = shared;
  chain.cursor = 0;

  // Linear walk of the flattened tree.  Each directed link is traversed
  // (and the drop policy consulted) at most once; a suppressed hop skips
  // its whole subtree via the precomputed extent.
  walk_scratch_.resize(tree.steps.size());
  walk_scratch_[0] = WalkState{0.0, pkt.ttl, 0, false};
  std::uint32_t i = 0;
  const auto step_count = static_cast<std::uint32_t>(tree.steps.size());
  while (i < step_count) {
    const TraceStep& s = tree.steps[i];
    const WalkState st = walk_scratch_[i];
    if (st.blocked) {
      i = s.subtree_end;
      continue;
    }
    if (s.member && attached_[s.node]) {
      const std::uint32_t reg =
          region_map_ != nullptr ? region_map_->of[s.node] : self_region_;
      if (peers_.empty() || reg == self_region_) {
        chain.items.push_back(ChainItem{st.delay, 0, s.node, st.hops});
        ++stats_.deliveries;
      } else {
        // Receiver lives in another region: bucket for a remote chain.
        // The owning network counts the delivery when it adopts the chain,
        // so increments and decrements stay on one network's counters.
        if (remote_buckets_[reg].empty()) touched_regions_.push_back(reg);
        remote_buckets_[reg].push_back(ChainItem{st.delay, 0, s.node, st.hops});
      }
    }
    for (std::uint32_t e = s.first_edge; e < s.first_edge + s.edge_count;
         ++e) {
      const TraceEdge& edge = tree.edges[e];
      WalkState& child = walk_scratch_[edge.child_step];
      if (hop_allowed(pkt, st.ttl,
                      LinkEnd{edge.child, edge.link, edge.delay,
                              edge.threshold},
                      s.node, packet_ordinal)) {
        child = WalkState{st.delay + edge.delay, st.ttl - 1, st.hops + 1,
                          false};
      } else {
        child.blocked = true;
      }
    }
    ++i;
  }
  dispatch_chain(chain_index, queue_->now());
  if (!touched_regions_.empty()) {
    // Ship each remote bucket as one chain.  Region index order makes the
    // per-origin chain counter — and thus the destination's drain order —
    // a pure function of the walk, independent of worker scheduling.
    std::sort(touched_regions_.begin(), touched_regions_.end());
    for (std::uint32_t reg : touched_regions_) {
      std::vector<ChainItem>& bucket = remote_buckets_[reg];
      std::stable_sort(bucket.begin(), bucket.end(),
                       [](const ChainItem& a, const ChainItem& b) {
                         return a.delay < b.delay;
                       });
      // Conservative-safety invariant: the path to another region crosses an
      // inter-region link, so no remote arrival can undercut the lookahead.
      assert(kernel_ == nullptr ||
             bucket.front().delay >= kernel_->lookahead());
      peers_[reg]->accept_remote_chain(self_region_, remote_seq_++, shared,
                                       std::move(bucket), queue_->now());
      bucket = std::vector<ChainItem>();
    }
    touched_regions_.clear();
  }
}

std::uint32_t MulticastNetwork::acquire_chain() {
  if (!free_chains_.empty()) {
    const std::uint32_t index = free_chains_.back();
    free_chains_.pop_back();
    return index;
  }
  const auto index = static_cast<std::uint32_t>(chain_pool_.size());
  chain_pool_.emplace_back();
  return index;
}

void MulticastNetwork::accept_remote_chain(std::uint32_t origin_region,
                                           std::uint64_t origin_seq,
                                           std::shared_ptr<const Packet> packet,
                                           std::vector<ChainItem> items,
                                           double sent_at) {
  RemoteChain rc;
  rc.first_arrival = sent_at + items.front().delay;
  rc.packet = std::move(packet);
  rc.items = std::move(items);
  rc.sent_at = sent_at;
  rc.origin_region = origin_region;
  rc.origin_seq = origin_seq;
  inboxes_[origin_region].push_back(std::move(rc));
}

void MulticastNetwork::drain_remote() {
  bool any = false;
  for (const std::vector<RemoteChain>& lane : inboxes_) {
    if (!lane.empty()) {
      any = true;
      break;
    }
  }
  if (!any) return;
  remote_merge_scratch_.clear();
  for (std::vector<RemoteChain>& lane : inboxes_) {
    for (RemoteChain& rc : lane) {
      remote_merge_scratch_.push_back(std::move(rc));
    }
    lane.clear();
  }
  // Adoption order is the deterministic merge key; the local seq block each
  // chain draws in dispatch_chain() follows from it, so delivery interleaving
  // at equal timestamps is identical for every worker count.
  std::sort(remote_merge_scratch_.begin(), remote_merge_scratch_.end(),
            [](const RemoteChain& a, const RemoteChain& b) {
              if (a.first_arrival != b.first_arrival) {
                return a.first_arrival < b.first_arrival;
              }
              if (a.origin_region != b.origin_region) {
                return a.origin_region < b.origin_region;
              }
              return a.origin_seq < b.origin_seq;
            });
  for (RemoteChain& rc : remote_merge_scratch_) {
    const std::uint32_t index = acquire_chain();
    DeliveryChain& chain = chain_pool_[index];
    chain.packet = std::move(rc.packet);
    chain.items = std::move(rc.items);
    chain.cursor = 0;
    for (const ChainItem& item : chain.items) {
      // Items invalidated while still in the inbox (a cut during the same
      // global phase as the send) were never counted as deliveries here.
      if (!item.dropped) ++stats_.deliveries;
    }
    dispatch_chain(index, rc.sent_at);
  }
  remote_merge_scratch_.clear();
}

void MulticastNetwork::dispatch_chain(std::uint32_t index, double sent_at) {
  DeliveryChain& chain = chain_pool_[index];
  if (chain.items.empty()) {
    chain.packet = nullptr;
    free_chains_.push_back(index);
    return;
  }
  chain.sent_at = sent_at;
  // The walk collected receivers in trace order, which is exactly the order
  // eager scheduling would have drawn sequence numbers in; assigning the
  // reserved block in that same order and then sorting by (delay, seq)
  // reproduces the eager scheme's delivery order bit-for-bit.
  const std::uint64_t base = queue_->allocate_seqs(chain.items.size());
  for (std::size_t i = 0; i < chain.items.size(); ++i) {
    chain.items[i].seq = base + i;
  }
  std::sort(chain.items.begin(), chain.items.end(),
            [](const ChainItem& a, const ChainItem& b) {
              if (a.delay != b.delay) return a.delay < b.delay;
              return a.seq < b.seq;
            });
  queue_->schedule_at_seq(sent_at + chain.items.front().delay,
                          chain.items.front().seq,
                          [this, index] { fire_chain(index); });
}

void MulticastNetwork::fire_chain(std::uint32_t index) {
  DeliveryChain& chain = chain_pool_[index];
  const ChainItem item = chain.items[chain.cursor++];
  std::shared_ptr<const Packet> packet;
  if (chain.cursor < chain.items.size()) {
    packet = chain.packet;
    const ChainItem& next = chain.items[chain.cursor];
    queue_->schedule_at_seq(chain.sent_at + next.delay, next.seq,
                            [this, index] { fire_chain(index); });
  } else {
    // Freed first: the sink may multicast and recycle this very chain.
    packet = std::move(chain.packet);
    chain.items.clear();
    free_chains_.push_back(index);
  }
  if (item.dropped) return;  // invalidated by a link failure while in flight
  // Re-resolve the sink at fire time: the receiver may have detached
  // (member crash or leave) after this chain was built.
  PacketSink* const sink = sinks_[item.to];
  if (sink == nullptr) {
    --stats_.deliveries;
    ++stats_.in_flight_invalidated;
    return;
  }
  DeliveryInfo info;
  info.receiver = item.to;
  info.path_delay = item.delay;
  info.hops = item.hops;
  info.remaining_ttl = packet->ttl - item.hops;
  if (tracer_->wants(trace::Category::kNet)) {
    trace::Event ev;
    ev.type = trace::EventType::kNetDeliver;
    ev.t = queue_->now();
    ev.actor = info.receiver;
    ev.a = packet->group;
    ev.b = kind_of(*packet);
    ev.c = packet->source;
    ev.d = static_cast<std::uint64_t>(info.hops);
    ev.x = info.path_delay;
    tracer_->emit(ev);
  }
  sink->on_receive(*packet, info);
  if (delivery_observer_) delivery_observer_(*packet, info);
}

bool MulticastNetwork::path_uses_link(NodeId src, NodeId dst, LinkId link) {
  const Spt& t = routing_.spt(src);
  for (NodeId v = dst; v != src;) {
    if (v >= t.parent.size() || t.parent[v] == kInvalidNode) return false;
    if (t.parent_link[v] == link) return true;
    v = t.parent[v];
  }
  return false;
}

void MulticastNetwork::invalidate_in_flight(LinkId link) {
  if (peers_.empty()) {
    invalidate_in_flight_local(link);
    return;
  }
  for (MulticastNetwork* p : peers_) p->invalidate_in_flight_local(link);
}

void MulticastNetwork::invalidate_in_flight_local(LinkId link) {
  for (DeliveryChain& chain : chain_pool_) {
    if (!chain.packet) continue;
    for (std::uint32_t i = chain.cursor;
         i < static_cast<std::uint32_t>(chain.items.size()); ++i) {
      ChainItem& item = chain.items[i];
      if (item.dropped) continue;
      if (path_uses_link(chain.packet->source, item.to, link)) {
        item.dropped = true;
        --stats_.deliveries;
        ++stats_.in_flight_invalidated;
      }
    }
  }
  for (PendingDelivery& pd : delivery_pool_) {
    if (!pd.packet || pd.dropped) continue;
    if (path_uses_link(pd.packet->source, pd.info.receiver, link)) {
      pd.dropped = true;
      --stats_.deliveries;
      ++stats_.in_flight_invalidated;
    }
  }
  // Chains still in inbox lanes (sent in this same global phase, not yet
  // drained).  These were never counted as deliveries, so only the
  // invalidation counter moves; drain_remote() skips them when counting.
  for (std::vector<RemoteChain>& lane : inboxes_) {
    for (RemoteChain& rc : lane) {
      for (ChainItem& item : rc.items) {
        if (item.dropped) continue;
        if (path_uses_link(rc.packet->source, item.to, link)) {
          item.dropped = true;
          ++stats_.in_flight_invalidated;
        }
      }
    }
  }
}

void MulticastNetwork::unicast(NodeId from, NodeId to, Packet packet) {
  packet.source = from;
  ++stats_.unicasts_sent;
  const std::uint64_t packet_ordinal = next_send_ordinal(from);
  if (send_observer_) send_observer_(from, packet);
  if (tracer_->wants(trace::Category::kNet)) {
    trace::Event ev;
    ev.type = trace::EventType::kNetSend;
    ev.t = queue_->now();
    ev.actor = from;
    ev.a = packet.group;
    ev.b = kind_of(packet);
    ev.c = static_cast<std::uint64_t>(packet.ttl);
    ev.d = static_cast<std::uint64_t>(packet.scope);
    tracer_->emit(ev);
  }

  const std::vector<NodeId> p = routing_.path(from, to);
  double delay = 0.0;
  int ttl = packet.ttl;
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    const LinkId lid = topo_->link_between(p[i], p[i + 1]);
    const Link& l = topo_->link(lid);
    LinkEnd edge{p[i + 1], lid, l.delay, l.threshold};
    if (!hop_allowed(packet, ttl, edge, p[i], packet_ordinal)) {
      return;  // dropped en route
    }
    delay += l.delay;
    --ttl;
  }
  const int hops_taken = static_cast<int>(p.size()) - 1;
  const std::uint32_t dest_region =
      region_map_ != nullptr ? region_map_->of[to] : self_region_;
  if (peers_.empty() || dest_region == self_region_) {
    const auto shared = std::make_shared<const Packet>(std::move(packet));
    schedule_delivery(shared, to, delay, hops_taken);
    return;
  }
  // Cross-region unicast: a one-item remote chain, adopted and counted by
  // the owning network.  Mirror schedule_delivery's detached-receiver check
  // so a unicast to a departed member costs nothing in either mode.
  if (!attached_[to]) return;
  assert(kernel_ == nullptr || delay >= kernel_->lookahead());
  std::vector<ChainItem> items{ChainItem{delay, 0, to, hops_taken}};
  peers_[dest_region]->accept_remote_chain(
      self_region_, remote_seq_++,
      std::make_shared<const Packet>(std::move(packet)), std::move(items),
      queue_->now());
}

}  // namespace srm::net
