#include "net/network.h"

#include <algorithm>
#include <stdexcept>

namespace srm::net {

MulticastNetwork::MulticastNetwork(sim::EventQueue& queue,
                                   const Topology& topo)
    : queue_(&queue),
      topo_(&topo),
      routing_(topo),
      sinks_(topo.node_count(), nullptr),
      drop_policy_(std::make_shared<NoDrop>()) {}

void MulticastNetwork::attach(NodeId n, PacketSink* sink) {
  if (sinks_.at(n) != nullptr) {
    throw std::logic_error("MulticastNetwork::attach: node already attached");
  }
  if (sink == nullptr) {
    throw std::invalid_argument("MulticastNetwork::attach: null sink");
  }
  sinks_[n] = sink;
}

void MulticastNetwork::detach(NodeId n) { sinks_.at(n) = nullptr; }

void MulticastNetwork::join(GroupId g, NodeId n) {
  if (n >= topo_->node_count()) {
    throw std::out_of_range("MulticastNetwork::join: bad node");
  }
  if (groups_[g].insert(n).second) ++membership_version_;
}

void MulticastNetwork::leave(GroupId g, NodeId n) {
  auto it = groups_.find(g);
  if (it != groups_.end() && it->second.erase(n) > 0) ++membership_version_;
}

bool MulticastNetwork::is_member(GroupId g, NodeId n) const {
  const auto it = groups_.find(g);
  return it != groups_.end() && it->second.count(n) > 0;
}

std::vector<NodeId> MulticastNetwork::members(GroupId g) const {
  std::vector<NodeId> out;
  const auto it = groups_.find(g);
  if (it != groups_.end()) {
    out.assign(it->second.begin(), it->second.end());
    std::sort(out.begin(), out.end());
  }
  return out;
}

void MulticastNetwork::set_drop_policy(std::shared_ptr<DropPolicy> policy) {
  drop_policy_ = policy ? std::move(policy) : std::make_shared<NoDrop>();
}

const MulticastNetwork::PrunedTree& MulticastNetwork::pruned(NodeId root,
                                                             GroupId group) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(root) << 32) | static_cast<std::uint64_t>(group);
  PrunedTree& entry = pruned_cache_[key];
  if (entry.membership_version == membership_version_) return entry;

  const Spt& t = routing_.spt(root);
  entry.membership_version = membership_version_;
  entry.need.assign(topo_->node_count(), false);
  const auto it = groups_.find(group);
  if (it != groups_.end()) {
    for (NodeId m : it->second) {
      // Mark the path from the member back to the root; stop early when we
      // reach an already-marked node (shared prefix).
      NodeId v = m;
      while (!entry.need[v]) {
        entry.need[v] = true;
        if (v == root) break;
        if (t.parent[v] == kInvalidNode) break;  // unreachable member
        v = t.parent[v];
      }
    }
  }
  return entry;
}

bool MulticastNetwork::hop_allowed(const Packet& packet, int ttl_at_from,
                                   const LinkEnd& edge, NodeId from) {
  // Mbone forwarding rule: a packet is forwarded on a link only if its TTL
  // is at least the link's threshold (Sec. VII-B.3).
  if (ttl_at_from < 1 || ttl_at_from < edge.threshold) {
    ++stats_.ttl_prunes;
    return false;
  }
  // Administrative scoping confines the packet to the sender's region.
  if (packet.scope == Scope::kAdmin &&
      topo_->admin_region(edge.peer) != topo_->admin_region(packet.source)) {
    ++stats_.ttl_prunes;
    return false;
  }
  if (drop_policy_->should_drop(packet,
                                HopContext{edge.link, from, edge.peer})) {
    ++stats_.drops;
    return false;
  }
  ++stats_.link_transmissions;
  return true;
}

void MulticastNetwork::deliver(const Packet& packet, NodeId to, double delay,
                               int hops_taken) {
  PacketSink* sink = sinks_.at(to);
  if (sink == nullptr) return;
  DeliveryInfo info;
  info.receiver = to;
  info.path_delay = delay;
  info.hops = hops_taken;
  info.remaining_ttl = packet.ttl - hops_taken;
  ++stats_.deliveries;
  queue_->schedule_after(delay, [this, packet, info, sink] {
    sink->on_receive(packet, info);
    if (delivery_observer_) delivery_observer_(packet, info);
  });
}

void MulticastNetwork::multicast(NodeId from, Packet packet) {
  if (from >= topo_->node_count()) {
    throw std::out_of_range("MulticastNetwork::multicast: bad sender");
  }
  packet.source = from;
  ++stats_.multicasts_sent;
  if (send_observer_) send_observer_(from, packet);

  const Spt& t = routing_.spt(from);
  const PrunedTree& tree = pruned(from, packet.group);

  // Iterative DFS over the member-pruned shortest-path tree.  Each directed
  // link is traversed (and the drop policy consulted) at most once.
  struct Frame {
    NodeId node;
    int ttl;
    double delay;
    int hops;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{from, packet.ttl, 0.0, 0});
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.node != from && is_member(packet.group, f.node)) {
      deliver(packet, f.node, f.delay, f.hops);
    }
    for (NodeId child : t.children[f.node]) {
      if (!tree.need.empty() && !tree.need[child]) continue;
      LinkEnd edge{};
      edge.peer = child;
      edge.link = t.parent_link[child];
      edge.delay = topo_->link(edge.link).delay;
      edge.threshold = topo_->link(edge.link).threshold;
      if (!hop_allowed(packet, f.ttl, edge, f.node)) continue;
      stack.push_back(
          Frame{child, f.ttl - 1, f.delay + edge.delay, f.hops + 1});
    }
  }
}

void MulticastNetwork::unicast(NodeId from, NodeId to, Packet packet) {
  packet.source = from;
  ++stats_.unicasts_sent;
  if (send_observer_) send_observer_(from, packet);

  const std::vector<NodeId> p = routing_.path(from, to);
  double delay = 0.0;
  int ttl = packet.ttl;
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    const LinkId lid = topo_->link_between(p[i], p[i + 1]);
    const Link& l = topo_->link(lid);
    LinkEnd edge{p[i + 1], lid, l.delay, l.threshold};
    if (!hop_allowed(packet, ttl, edge, p[i])) return;  // dropped en route
    delay += l.delay;
    --ttl;
  }
  deliver(packet, to, delay, static_cast<int>(p.size()) - 1);
}

}  // namespace srm::net
