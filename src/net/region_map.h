// Region partitioning for the conservative parallel kernel.
//
// partition_regions() groups a Topology's nodes into regions so that each
// region can be simulated on its own thread: low-delay links are kept
// inside regions and high-delay links end up on the cut, because the PDES
// lookahead — the safe-window width — is the minimum delay over every
// inter-region link.  The partition is a pure, deterministic function of
// the graph structure (node/link ids, delays), never of thread count or
// link up/down state, so the same topology always yields the same region
// map and the parallel kernel's event order is reproducible bit-for-bit.
//
// Down links still count: they constrain the lookahead (a healed link must
// not be able to deliver faster than the windows assumed) and they
// contribute to the structure walk (a partition/heal cycle must not change
// the region map).
//
// Algorithm (all ties broken by lowest id):
//   1. seeds by farthest-point sampling over BFS hop distance;
//   2. multi-source Dijkstra growth over link delays with a per-region
//      size cap of ceil(N / regions), so cheap edges are absorbed first;
//   3. leftover nodes (disconnected, or walled in by full regions) are
//      attached to the smallest region in node-id order.
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.h"

namespace srm::net {

struct RegionMap {
  std::vector<std::uint32_t> of;  // node id -> region index
  std::uint32_t count = 1;        // number of regions actually produced
  // Minimum delay over every link (up or down) whose endpoints live in
  // different regions; +infinity when count == 1.  This is the parallel
  // kernel's lookahead.
  double lookahead = 0.0;

  std::uint32_t region_of(NodeId n) const { return of[n]; }
};

// Partitions `topo` into at most `target` regions.  Degenerate inputs
// (target <= 1, empty graph, or a cut that would yield zero lookahead)
// collapse to a single region, which the caller should treat as "run
// sequentially".
RegionMap partition_regions(const Topology& topo, std::uint32_t target);

// Per-region-pair delay lower bounds for the parallel kernel's asynchronous
// windows: d[s][r] is the metric closure (Floyd-Warshall) over the region
// graph whose s-r edge weight is the minimum delay of any link joining the
// two regions directly.  Any physical path from region s into region r
// crosses one cut link per region boundary, so its delay is bounded below
// by d[s][r]; intra-region hops only add to it.  Down links count (a
// healed link must not deliver faster than the windows assumed), so the
// matrix is a static function of the graph like the partition itself.
// d[r][r] = 0; pairs with no connecting path are +infinity; every
// off-diagonal reachable entry is >= map.lookahead.
std::vector<std::vector<double>> region_distance_matrix(const Topology& topo,
                                                        const RegionMap& map);

}  // namespace srm::net
