// Heavy-traffic workload suite (ARCHITECTURE.md §13): deterministic,
// seeded scripts that drive an SRM session far outside the paper's figure
// scenarios, runnable over either Transport backend and judged by the
// fault-layer RecoveryInvariantChecker.
//
// A workload is a WorkloadSpec: a protocol config plus a time-sorted list
// of scripted Actions (sends, joins, leaves/crashes, receive-side drops,
// page-state probes) generated up front from (members, seed) — the same
// FaultPlan philosophy: all randomness is spent at generation time, so a
// run is a pure function of the spec and the backend clock.  Four
// generators ship:
//
//   flash-crowd    a small core session accumulates page history, then a
//                  crowd of late-joiners arrives within ~a second and hits
//                  page-state recovery simultaneously
//   conference     NETRAWALM-style multiparty conference: speakers take
//                  randomized talk-spurts on their own pages while scripted
//                  receiver-side drops force recovery under way traffic
//   diurnal        membership swells (join wave), cruises, then drains
//                  (graceful leaves + a few crashes) under a steady stream
//   repair-storm   adversarial: the same DATA packet is dropped at a large
//                  fraction of members at once, repeatedly — the request/
//                  repair suppression machinery must keep the storm under
//                  the checker's sliding-window budget
//
// run_workload_sim executes a spec on a harness::SimSession (virtual time,
// deterministic); run_workload_udp executes the same spec over one
// UdpTransport bus on loopback (wall time).  Both fold the srm trace into
// the checker and a trace::RecoveryTimeline for the result's counters,
// latency percentiles and determinism fingerprint.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/checker.h"
#include "srm/config.h"
#include "srm/names.h"

namespace srm::workload {

struct Action {
  enum class Kind : std::uint8_t {
    kSend,      // member multicasts one ADU on `page`
    kJoin,      // member joins the session
    kLeave,     // graceful departure
    kCrash,     // silent departure
    kDropOnce,  // arm a receive-side drop rule at `member`
    kPageProbe, // member requests page state (late-join recovery entry)
  };

  double at = 0.0;
  Kind kind = Kind::kSend;
  std::uint32_t member = 0;  // acting member ordinal (0..peak_members-1)

  // kSend / kPageProbe
  PageId page{0, 1};
  std::size_t payload_bytes = 64;

  // kDropOnce: drop the next `drop_count` messages of `drop_kind`
  // (trace_kind: 1=DATA, 2=REQUEST, 3=REPAIR) naming seq `drop_seq` (from
  // source `drop_source`, kInvalidSource = any) that arrive at `member`.
  std::uint32_t drop_kind = 1;
  SeqNo drop_seq = 0;
  SourceId drop_source = kInvalidSource;
  std::size_t drop_count = 1;
};

struct WorkloadSpec {
  std::string name;
  std::size_t initial_members = 2;  // ordinals 0..initial-1 start joined
  std::size_t peak_members = 2;     // world capacity (ordinal space)
  std::uint64_t seed = 1;
  SrmConfig config;
  std::vector<Action> actions;      // sorted by `at`
  double duration = 12.0;           // run horizon, seconds
  fault::CheckerOptions checker;
};

// Generators.  `members` scales the whole scenario (peak membership);
// every timestamp, ordinal and drop rule is derived from `seed` alone.
WorkloadSpec make_flash_crowd(std::size_t members, std::uint64_t seed);
WorkloadSpec make_conference(std::size_t members, std::uint64_t seed);
WorkloadSpec make_diurnal(std::size_t members, std::uint64_t seed);
WorkloadSpec make_repair_storm(std::size_t members, std::uint64_t seed);

// Registered generator names ("flash-crowd", "conference", "diurnal",
// "repair-storm") and the dispatching factory (throws std::invalid_argument
// on an unknown name).
std::vector<std::string> workload_names();
WorkloadSpec make_workload(const std::string& name, std::size_t members,
                           std::uint64_t seed);

struct WorkloadResult {
  fault::CheckerReport checker;
  bool passed = false;              // checker verdict

  std::size_t actions_executed = 0;
  std::size_t data_sent = 0;
  std::size_t joins = 0;
  std::size_t departures = 0;
  std::size_t scripted_drops = 0;   // receive-filter hits

  // Timeline totals.
  std::size_t losses = 0;           // recovery stories opened
  std::size_t requests = 0;
  std::size_t repairs = 0;
  std::size_t recoveries = 0;

  // Detection -> recovery latency percentiles, seconds (virtual time under
  // sim — deterministic, the values BENCH_workload.json gates on).
  double recovery_p50 = 0.0;
  double recovery_p99 = 0.0;
  double recovery_max = 0.0;

  // Deterministic digest of the folded timeline + counters: two sim runs
  // of the same spec produce the same fingerprint.
  std::uint64_t fingerprint = 0;
};

// Runs on the simulator backend (star topology, sequential kernel).
WorkloadResult run_workload_sim(const WorkloadSpec& spec);

// Runs over real UDP multicast on loopback; wall-clock duration = spec
// duration.  Throws transport::TransportError when multicast is
// unavailable; gate with transport::UdpTransport::available().
WorkloadResult run_workload_udp(const WorkloadSpec& spec);

}  // namespace srm::workload
