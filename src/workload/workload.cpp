#include "workload/workload.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "harness/session.h"
#include "net/packet.h"
#include "sim/event_queue.h"
#include "srm/agent.h"
#include "srm/messages.h"
#include "topo/builders.h"
#include "trace/timeline.h"
#include "trace/trace.h"
#include "transport/udp_transport.h"
#include "util/rng.h"

namespace srm::workload {

namespace {

constexpr net::GroupId kGroup = 1;
constexpr PageId kPage{0, 1};

// Both backends run with estimated distances (constant default_distance —
// the UDP backend has no oracle, and the suite wants the identical timer
// regime on both) and session messages off, so a workload's recovery
// behaviour depends only on the scripted traffic and the member RNG streams.
SrmConfig base_config() {
  SrmConfig config;
  config.distance_mode = DistanceMode::kEstimated;
  config.default_distance = 0.05;
  config.session.enabled = false;
  return config;
}

// Receive-side drop rules armed by kDropOnce actions, consulted through the
// Transport receive-filter hook.  Rules are keyed by the receiving *node* id
// (the delivery's receiver field on both backends); the runner resolves
// member ordinals to nodes when arming.
class DropScript {
 public:
  void arm(net::NodeId node, const Action& action) {
    rules_.push_back(
        {node, action.drop_kind, action.drop_seq, action.drop_source,
         action.drop_count});
  }

  bool should_drop(net::NodeId receiver, const net::Packet& packet) {
    if (rules_.empty() || !packet.payload) return false;
    const std::uint32_t kind = packet.payload->trace_kind();
    SourceId source = kInvalidSource;
    SeqNo seq = 0;
    switch (kind) {
      case 1: {
        const auto& name = static_cast<const DataMessage&>(*packet.payload).name();
        source = name.source;
        seq = name.seq;
        break;
      }
      case 2: {
        const auto& name =
            static_cast<const RequestMessage&>(*packet.payload).name();
        source = name.source;
        seq = name.seq;
        break;
      }
      case 3: {
        const auto& name =
            static_cast<const RepairMessage&>(*packet.payload).name();
        source = name.source;
        seq = name.seq;
        break;
      }
      default:
        return false;
    }
    for (Rule& rule : rules_) {
      if (rule.remaining == 0 || rule.node != receiver || rule.kind != kind ||
          rule.seq != seq) {
        continue;
      }
      if (rule.source != kInvalidSource && rule.source != source) continue;
      --rule.remaining;
      ++fired_;
      return true;
    }
    return false;
  }

  std::size_t fired() const { return fired_; }

 private:
  struct Rule {
    net::NodeId node;
    std::uint32_t kind;
    SeqNo seq;
    SourceId source;
    std::size_t remaining;
  };
  std::vector<Rule> rules_;
  std::size_t fired_ = 0;
};

// What a backend must provide for the action interpreter: a queue to script
// on, member lookup/churn by ordinal, and a run-to-horizon loop.
class Host {
 public:
  virtual ~Host() = default;
  virtual sim::EventQueue& control_queue() = 0;
  virtual SrmAgent* find(std::uint32_t ordinal) = 0;
  virtual void join(std::uint32_t ordinal) = 0;
  virtual void part(std::uint32_t ordinal, bool graceful) = 0;
  virtual net::NodeId node_of(std::uint32_t ordinal) const = 0;
  // The SRM Source-ID the backend assigned the ordinal (node id on both
  // backends, but sim node ids are not ordinals — star leaves start at 1).
  virtual SourceId source_of(std::uint32_t ordinal) const = 0;
  virtual void run(double until) = 0;
};

class SimHost final : public Host {
 public:
  SimHost(const WorkloadSpec& spec, trace::Tracer* tracer, DropScript* script)
      : star_(topo::make_star(spec.peak_members, 0.01)), script_(script) {
    harness::SimSession::Options options;
    options.srm = spec.config;
    options.seed = spec.seed;
    options.group = kGroup;
    std::vector<net::NodeId> initial;
    for (std::size_t i = 0; i < spec.initial_members; ++i) {
      initial.push_back(star_.leaves[i]);
    }
    session_ = std::make_unique<harness::SimSession>(star_.topo, initial,
                                                     options);
    session_->set_tracer(tracer);
    for (net::NodeId node : initial) {
      install_filter(session_->agent_at(node));
    }
  }

  sim::EventQueue& control_queue() override { return session_->queue(); }

  SrmAgent* find(std::uint32_t ordinal) override {
    const net::NodeId node = node_of(ordinal);
    return session_->has_member(node) ? &session_->agent_at(node) : nullptr;
  }

  void join(std::uint32_t ordinal) override {
    install_filter(session_->add_member(node_of(ordinal)));
  }

  void part(std::uint32_t ordinal, bool graceful) override {
    session_->remove_member(node_of(ordinal), graceful);
  }

  net::NodeId node_of(std::uint32_t ordinal) const override {
    return star_.leaves.at(ordinal);
  }

  SourceId source_of(std::uint32_t ordinal) const override {
    return star_.leaves.at(ordinal);  // SimSession: Source-ID == node id
  }

  void run(double until) override { session_->run_until(until); }

 private:
  void install_filter(SrmAgent& agent) {
    DropScript* script = script_;
    agent.transport().set_receive_filter(
        [script](const net::Packet& packet, const net::DeliveryInfo& info) {
          return script->should_drop(info.receiver, packet);
        });
  }

  topo::Star star_;
  DropScript* script_;
  std::unique_ptr<harness::SimSession> session_;
};

class UdpHost final : public Host {
 public:
  UdpHost(const WorkloadSpec& spec, trace::Tracer* tracer, DropScript* script)
      : spec_(spec), tracer_(tracer) {
    transport_.set_receive_filter(
        [script](const net::Packet& packet, const net::DeliveryInfo& info) {
          return script->should_drop(info.receiver, packet);
        });
    agents_.resize(spec.peak_members);
    for (std::uint32_t i = 0; i < spec.initial_members; ++i) join(i);
  }

  sim::EventQueue& control_queue() override { return transport_.queue(); }

  SrmAgent* find(std::uint32_t ordinal) override {
    return agents_.at(ordinal).get();
  }

  void join(std::uint32_t ordinal) override {
    auto agent = std::make_unique<SrmAgent>(
        transport_, directory_, /*node=*/ordinal, /*id=*/ordinal, kGroup,
        spec_.config, util::Rng(spec_.seed * 1000 + ordinal));
    agent->set_tracer(tracer_);
    agent->start();
    agents_.at(ordinal) = std::move(agent);
  }

  void part(std::uint32_t ordinal, bool graceful) override {
    // Graceful vs. crash is indistinguishable at this backend's transport
    // (no departure announcement without session messages); both detach.
    (void)graceful;
    agents_.at(ordinal).reset();
  }

  net::NodeId node_of(std::uint32_t ordinal) const override { return ordinal; }

  SourceId source_of(std::uint32_t ordinal) const override { return ordinal; }

  void run(double until) override {
    const double remaining = until - transport_.elapsed();
    if (remaining > 0) transport_.run_for(remaining);
  }

 private:
  const WorkloadSpec& spec_;
  trace::Tracer* tracer_;
  transport::UdpTransport transport_;
  MemberDirectory directory_;
  std::vector<std::unique_ptr<SrmAgent>> agents_;
};

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto n = static_cast<double>(sorted.size());
  auto idx = static_cast<std::size_t>(std::ceil(p * n));
  if (idx > 0) --idx;
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

WorkloadResult execute(const WorkloadSpec& spec, Host& host,
                       DropScript& script, trace::VectorSink& sink) {
  WorkloadResult result;
  for (const Action& action : spec.actions) {
    host.control_queue().schedule_at(action.at, [&host, &script, &result,
                                                 action] {
      ++result.actions_executed;
      SrmAgent* agent = host.find(action.member);
      switch (action.kind) {
        case Action::Kind::kSend:
          if (agent) {
            agent->send_data(action.page,
                             Payload(action.payload_bytes,
                                     static_cast<std::uint8_t>(action.member)));
            ++result.data_sent;
          }
          break;
        case Action::Kind::kJoin:
          if (!agent) {
            host.join(action.member);
            ++result.joins;
          }
          break;
        case Action::Kind::kLeave:
        case Action::Kind::kCrash:
          if (agent) {
            host.part(action.member, action.kind == Action::Kind::kLeave);
            ++result.departures;
          }
          break;
        case Action::Kind::kDropOnce: {
          // Generators speak member ordinals; the script matches wire-level
          // Source-IDs, so translate here where the backend is known.
          Action armed = action;
          if (armed.drop_source != kInvalidSource) {
            armed.drop_source =
                host.source_of(static_cast<std::uint32_t>(armed.drop_source));
          }
          script.arm(host.node_of(action.member), armed);
          break;
        }
        case Action::Kind::kPageProbe:
          if (agent) agent->request_page_state(action.page);
          break;
      }
    });
  }
  host.run(spec.duration);

  const std::vector<trace::Event>& events = sink.events();
  fault::RecoveryInvariantChecker checker(spec.checker);
  result.checker = checker.check(events, /*windows=*/{}, spec.duration);
  result.passed = result.checker.passed;
  result.scripted_drops = script.fired();

  const auto timeline = trace::RecoveryTimeline::fold(events);
  std::ostringstream digest;
  digest << spec.name << "|" << spec.seed;
  result.losses = timeline.stories().size();
  for (const auto& story : timeline.stories()) {
    result.requests += story.requests_sent;
    result.repairs += story.repairs_sent;
    result.recoveries += story.recoveries;
    digest << "|" << trace::to_string(story.adu) << ":" << story.detections
           << "," << story.requests_sent << "," << story.request_backoffs
           << "," << story.repairs_sent << "," << story.repair_suppressions
           << "," << story.recoveries << "," << story.abandoned << ","
           << story.first_detector << "," << story.first_requestor << ","
           << story.first_responder;
  }
  digest << "|sent=" << result.data_sent << " joins=" << result.joins
         << " departures=" << result.departures
         << " drops=" << result.scripted_drops;
  result.fingerprint = fnv1a64(digest.str());

  std::vector<double> latencies = result.checker.recovery_latencies;
  std::sort(latencies.begin(), latencies.end());
  result.recovery_p50 = percentile(latencies, 0.50);
  result.recovery_p99 = percentile(latencies, 0.99);
  result.recovery_max = latencies.empty() ? 0.0 : latencies.back();
  return result;
}

WorkloadResult run_spec(const WorkloadSpec& spec, bool udp) {
  trace::VectorSink sink;
  trace::Tracer tracer;
  tracer.set_sink(&sink);
  tracer.set_mask(static_cast<std::uint32_t>(trace::Category::kSrm));
  DropScript script;
  if (udp) {
    UdpHost host(spec, &tracer, &script);
    return execute(spec, host, script, sink);
  }
  SimHost host(spec, &tracer, &script);
  return execute(spec, host, script, sink);
}

util::Rng generator_rng(std::uint64_t seed, std::uint64_t salt) {
  return util::Rng(seed * 0x9E3779B97F4A7C15ull + salt);
}

void sort_actions(WorkloadSpec& spec) {
  std::stable_sort(spec.actions.begin(), spec.actions.end(),
                   [](const Action& a, const Action& b) { return a.at < b.at; });
}

Action send_action(double at, std::uint32_t member, PageId page) {
  Action a;
  a.at = at;
  a.kind = Action::Kind::kSend;
  a.member = member;
  a.page = page;
  return a;
}

// Drop the DATA packet (from `source`, seq `seq`) about to arrive at
// `member`: the rule is armed just before the send fires.
Action drop_action(double send_at, std::uint32_t member, SourceId source,
                   SeqNo seq) {
  Action a;
  a.at = send_at - 0.01;
  a.kind = Action::Kind::kDropOnce;
  a.member = member;
  a.drop_kind = 1;
  a.drop_seq = seq;
  a.drop_source = source;
  a.drop_count = 1;
  return a;
}

}  // namespace

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

WorkloadSpec make_flash_crowd(std::size_t members, std::uint64_t seed) {
  members = std::max<std::size_t>(members, 4);
  WorkloadSpec spec;
  spec.name = "flash-crowd";
  spec.seed = seed;
  spec.peak_members = members;
  spec.initial_members = std::max<std::size_t>(2, members / 6);
  spec.config = base_config();
  spec.duration = 12.0;
  spec.checker.deadline = 4.0;
  // The crowd legitimately needs up to (joiners x history) repair traffic in
  // one burst — each late joiner retro-detects the full 27-ADU history at
  // once — so the storm budget is that envelope, not the flat per-member
  // default; a super-linear implosion still trips it.
  spec.checker.storm_budget = std::max<std::size_t>(
      200, (members - std::max<std::size_t>(2, members / 6)) * 27);
  util::Rng rng = generator_rng(seed, 1);

  // The source streams one ADU every 250 ms; the first ~10 are "history" the
  // crowd will never see on the wire.
  for (SeqNo k = 0; k < 27; ++k) {
    spec.actions.push_back(send_action(0.4 + 0.25 * static_cast<double>(k),
                                       /*member=*/0, kPage));
  }
  // Background receive loss at the core members keeps ordinary
  // request/repair traffic flowing before and during the flash.
  for (SeqNo k = 10; k < 27; k += 5) {
    if (spec.initial_members < 2) break;
    const auto victim = static_cast<std::uint32_t>(rng.uniform_int(
        1, static_cast<std::int64_t>(spec.initial_members) - 1));
    spec.actions.push_back(
        drop_action(0.4 + 0.25 * static_cast<double>(k), victim, 0, k));
  }
  // The flash: everyone else joins within 1.2 s and immediately probes the
  // page, so the whole crowd enters page-state recovery at once.
  for (std::size_t m = spec.initial_members; m < members; ++m) {
    const double at = 3.0 + rng.uniform(0.0, 1.2);
    Action join;
    join.at = at;
    join.kind = Action::Kind::kJoin;
    join.member = static_cast<std::uint32_t>(m);
    spec.actions.push_back(join);
    Action probe = join;
    probe.at = at + 0.08;
    probe.kind = Action::Kind::kPageProbe;
    probe.page = kPage;
    spec.actions.push_back(probe);
  }
  sort_actions(spec);
  return spec;
}

WorkloadSpec make_conference(std::size_t members, std::uint64_t seed) {
  members = std::max<std::size_t>(members, 4);
  WorkloadSpec spec;
  spec.name = "conference";
  spec.seed = seed;
  spec.peak_members = members;
  spec.initial_members = members;
  spec.config = base_config();
  spec.duration = 12.0;
  spec.checker.deadline = 3.5;
  spec.checker.storm_budget = std::max<std::size_t>(200, members * 4);
  util::Rng rng = generator_rng(seed, 2);

  // NETRAWALM-style floor passing: one active speaker at a time, talk spurts
  // of 0.6-1.4 s at 10 ADUs/s, randomized receive loss scripted against the
  // known send schedule (each speaker's seq counter is deterministic).
  const auto speakers = std::min<std::size_t>(5, members);
  std::vector<SeqNo> next_seq(speakers, 0);
  double t = 0.5;
  std::uint32_t prev = 0xFFFFFFFFu;
  while (t < 8.0) {
    auto s = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(speakers) - 1));
    if (speakers > 1 && s == prev) s = (s + 1) % speakers;
    prev = s;
    const double spurt_end = std::min(t + rng.uniform(0.6, 1.4), 8.0);
    while (t < spurt_end) {
      const SeqNo q = next_seq[s]++;
      spec.actions.push_back(send_action(t, s, kPage));
      if (rng.chance(0.12)) {
        auto victim = static_cast<std::uint32_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(members) - 1));
        if (victim == s) victim = (victim + 1) % members;
        spec.actions.push_back(drop_action(t, victim, s, q));
      }
      t += 0.1;
    }
    t += rng.uniform(0.05, 0.2);
  }
  sort_actions(spec);
  return spec;
}

WorkloadSpec make_diurnal(std::size_t members, std::uint64_t seed) {
  members = std::max<std::size_t>(members, 4);
  WorkloadSpec spec;
  spec.name = "diurnal";
  spec.seed = seed;
  spec.peak_members = members;
  spec.initial_members = std::max<std::size_t>(2, members / 3);
  spec.config = base_config();
  spec.duration = 12.0;
  spec.checker.deadline = 3.5;
  // As in flash-crowd, the join wave's page-state recovery scales with
  // (joiners x stream history): budget the envelope, catch the blowup.
  spec.checker.storm_budget = std::max<std::size_t>(
      200, (members - std::max<std::size_t>(2, members / 3)) * 45);
  util::Rng rng = generator_rng(seed, 3);

  // Steady stream under a membership tide: a join wave crests around t=3,
  // the drain (mostly graceful, some crashes) around t=8.5.
  for (SeqNo k = 0; k < 30; ++k) {
    const double at = 0.4 + 0.3 * static_cast<double>(k);
    spec.actions.push_back(send_action(at, /*member=*/0, kPage));
    if (k >= 4 && rng.chance(0.15)) {
      const auto victim = static_cast<std::uint32_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(members) - 1));
      spec.actions.push_back(drop_action(at, victim, 0, k));
    }
  }
  for (std::size_t m = spec.initial_members; m < members; ++m) {
    Action join;
    join.at = 1.5 + rng.uniform(0.0, 3.5);
    join.kind = Action::Kind::kJoin;
    join.member = static_cast<std::uint32_t>(m);
    spec.actions.push_back(join);
    Action depart = join;
    depart.at = 7.0 + rng.uniform(0.0, 3.0);
    depart.kind =
        rng.chance(0.25) ? Action::Kind::kCrash : Action::Kind::kLeave;
    spec.actions.push_back(depart);
  }
  sort_actions(spec);
  return spec;
}

WorkloadSpec make_repair_storm(std::size_t members, std::uint64_t seed) {
  members = std::max<std::size_t>(members, 4);
  WorkloadSpec spec;
  spec.name = "repair-storm";
  spec.seed = seed;
  spec.peak_members = members;
  spec.initial_members = members;
  spec.config = base_config();
  spec.duration = 12.0;
  spec.checker.deadline = 4.0;
  spec.checker.storm_budget = std::max<std::size_t>(200, members * 4);
  util::Rng rng = generator_rng(seed, 4);

  // Adversarial correlated loss: every other ADU is dropped at 60% of the
  // receivers simultaneously, so the request/repair timers face the paper's
  // worst case — the checker's sliding-window budget is the assertion that
  // suppression keeps the implosion bounded.
  const auto receivers = members - 1;
  const auto victims_per_burst = std::max<std::size_t>(1, (receivers * 3) / 5);
  // 13 sends so the last burst (k=11) is revealed by a later arrival: gap
  // detection needs a higher seq to advertise the missing one.
  for (SeqNo k = 0; k < 13; ++k) {
    const double at = 0.5 + 0.6 * static_cast<double>(k);
    spec.actions.push_back(send_action(at, /*member=*/0, kPage));
    if (k % 2 == 0) continue;
    std::vector<std::uint32_t> pool(receivers);
    std::iota(pool.begin(), pool.end(), 1u);
    for (std::size_t i = 0; i < victims_per_burst; ++i) {
      const auto j = static_cast<std::size_t>(rng.uniform_int(
          static_cast<std::int64_t>(i),
          static_cast<std::int64_t>(pool.size()) - 1));
      std::swap(pool[i], pool[j]);
      spec.actions.push_back(drop_action(at, pool[i], 0, k));
    }
  }
  sort_actions(spec);
  return spec;
}

std::vector<std::string> workload_names() {
  return {"flash-crowd", "conference", "diurnal", "repair-storm"};
}

WorkloadSpec make_workload(const std::string& name, std::size_t members,
                           std::uint64_t seed) {
  if (name == "flash-crowd") return make_flash_crowd(members, seed);
  if (name == "conference") return make_conference(members, seed);
  if (name == "diurnal") return make_diurnal(members, seed);
  if (name == "repair-storm") return make_repair_storm(members, seed);
  throw std::invalid_argument("unknown workload: " + name);
}

// ---------------------------------------------------------------------------
// Runners
// ---------------------------------------------------------------------------

WorkloadResult run_workload_sim(const WorkloadSpec& spec) {
  return run_spec(spec, /*udp=*/false);
}

WorkloadResult run_workload_udp(const WorkloadSpec& spec) {
  return run_spec(spec, /*udp=*/true);
}

}  // namespace srm::workload
