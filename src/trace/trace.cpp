#include "trace/trace.h"

#include <cstdio>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace srm::trace {

// ---------------------------------------------------------------------------
// Schema table — the single source of truth for event names and fields.
// README.md's "Trace schema" section is generated from this table's shape;
// keep them in sync.
// ---------------------------------------------------------------------------

namespace {

const std::vector<EventSpec>& specs() {
  static const std::vector<EventSpec> kSpecs = {
      // type, category, name, a, b, c, d, e, x, y
      {EventType::kSimSchedule, Category::kSim, "sched", "slot", "gen",
       nullptr, nullptr, nullptr, "when", nullptr},
      {EventType::kSimFire, Category::kSim, "fire", "slot", "gen", nullptr,
       nullptr, nullptr, nullptr, nullptr},
      {EventType::kSimCancel, Category::kSim, "cancel", "slot", "gen",
       nullptr, nullptr, nullptr, nullptr, nullptr},

      {EventType::kNetSend, Category::kNet, "send", "group", "kind", "ttl",
       "scope", nullptr, nullptr, nullptr},
      {EventType::kNetDeliver, Category::kNet, "deliver", "group", "kind",
       "from", "hops", nullptr, "delay", nullptr},
      {EventType::kNetDrop, Category::kNet, "drop", "group", "kind",
       "link_to", "link", nullptr, nullptr, nullptr},
      {EventType::kNetPrune, Category::kNet, "prune", "group", "kind",
       "link_to", "ttl", nullptr, nullptr, nullptr},

      {EventType::kSrmLoss, Category::kSrm, "loss", "src", "page_c", "page_n",
       "seq", "via_request", nullptr, "dist"},
      {EventType::kSrmReqTimerSet, Category::kSrm, "req_timer_set", "src",
       "page_c", "page_n", "seq", "backoffs", "delay", "dist"},
      {EventType::kSrmReqFire, Category::kSrm, "req_fire", "src", "page_c",
       "page_n", "seq", "backoffs", nullptr, nullptr},
      {EventType::kSrmReqSend, Category::kSrm, "req_send", "src", "page_c",
       "page_n", "seq", "ttl", "escalated", nullptr},
      {EventType::kSrmReqHear, Category::kSrm, "req_hear", "src", "page_c",
       "page_n", "seq", "requestor", nullptr, nullptr},
      {EventType::kSrmReqBackoff, Category::kSrm, "req_backoff", "src",
       "page_c", "page_n", "seq", "backoffs", "ignored", nullptr},
      {EventType::kSrmRepTimerSet, Category::kSrm, "rep_timer_set", "src",
       "page_c", "page_n", "seq", "requestor", "delay", "dist"},
      {EventType::kSrmRepFire, Category::kSrm, "rep_fire", "src", "page_c",
       "page_n", "seq", nullptr, nullptr, nullptr},
      {EventType::kSrmRepSend, Category::kSrm, "rep_send", "src", "page_c",
       "page_n", "seq", "ttl", "step_one", nullptr},
      {EventType::kSrmRepHear, Category::kSrm, "rep_hear", "src", "page_c",
       "page_n", "seq", "responder", nullptr, nullptr},
      {EventType::kSrmRepSuppress, Category::kSrm, "rep_suppress", "src",
       "page_c", "page_n", "seq", "responder", nullptr, nullptr},
      {EventType::kSrmRecovered, Category::kSrm, "recovered", "src", "page_c",
       "page_n", "seq", nullptr, "delay", nullptr},
      {EventType::kSrmAbandoned, Category::kSrm, "abandoned", "src", "page_c",
       "page_n", "seq", nullptr, nullptr, nullptr},
      {EventType::kSrmAdaptReq, Category::kSrm, "adapt_req", nullptr, nullptr,
       nullptr, nullptr, nullptr, "c1", "c2"},
      {EventType::kSrmAdaptRep, Category::kSrm, "adapt_rep", nullptr, nullptr,
       nullptr, nullptr, nullptr, "d1", "d2"},
      {EventType::kSrmScopeEscalate, Category::kSrm, "scope_escalate", "src",
       "page_c", "page_n", "seq", "ttl", nullptr, nullptr},
      {EventType::kSrmFecBudgetRaise, Category::kSrm, "fec_budget_raise",
       "src", "page_c", "page_n", nullptr, "k_new", "k_old", "evidence"},
      {EventType::kSrmFecBudgetDecay, Category::kSrm, "fec_budget_decay",
       "src", "page_c", "page_n", nullptr, "k_new", "k_old", "burst"},
      {EventType::kSrmFecParity, Category::kSrm, "fec_parity_send", "src",
       "page_c", "page_n", "seq", "gen", "scheme", "k"},
      {EventType::kSrmFecReconstruct, Category::kSrm, "fec_reconstruct",
       "src", "page_c", "page_n", "seq", "gen", "scheme", "erasures"},

      {EventType::kFaultLinkDown, Category::kFault, "link_down", "link",
       "end_a", "end_b", nullptr, nullptr, nullptr, nullptr},
      {EventType::kFaultLinkUp, Category::kFault, "link_up", "link", "end_a",
       "end_b", nullptr, nullptr, nullptr, nullptr},
      {EventType::kFaultPartition, Category::kFault, "partition", "ordinal",
       "cut_links", nullptr, nullptr, nullptr, nullptr, nullptr},
      {EventType::kFaultHeal, Category::kFault, "heal", "ordinal",
       "restored_links", nullptr, nullptr, nullptr, nullptr, nullptr},
      {EventType::kFaultJoin, Category::kFault, "member_join", nullptr,
       nullptr, nullptr, nullptr, nullptr, nullptr, nullptr},
      {EventType::kFaultLeave, Category::kFault, "member_leave", nullptr,
       nullptr, nullptr, nullptr, nullptr, nullptr, nullptr},
      {EventType::kFaultCrash, Category::kFault, "member_crash", nullptr,
       nullptr, nullptr, nullptr, nullptr, nullptr, nullptr},
      {EventType::kFaultRejoin, Category::kFault, "member_rejoin", nullptr,
       nullptr, nullptr, nullptr, nullptr, nullptr, nullptr},
      {EventType::kFaultBurstOn, Category::kFault, "burst_on",
       "loss_good_ppm", "loss_bad_ppm", nullptr, nullptr, nullptr, "p_gb",
       "p_bg"},
      {EventType::kFaultBurstOff, Category::kFault, "burst_off", nullptr,
       nullptr, nullptr, nullptr, nullptr, nullptr, nullptr},
  };
  return kSpecs;
}

const std::unordered_map<std::uint16_t, const EventSpec*>& by_type() {
  static const auto* kMap = [] {
    auto* m = new std::unordered_map<std::uint16_t, const EventSpec*>();
    for (const EventSpec& s : specs()) {
      (*m)[static_cast<std::uint16_t>(s.type)] = &s;
    }
    return m;
  }();
  return *kMap;
}

const std::unordered_map<std::string, const EventSpec*>& by_name() {
  static const auto* kMap = [] {
    auto* m = new std::unordered_map<std::string, const EventSpec*>();
    for (const EventSpec& s : specs()) (*m)[s.name] = &s;
    return m;
  }();
  return *kMap;
}

const char* category_name(Category c) {
  switch (c) {
    case Category::kSim:
      return "sim";
    case Category::kNet:
      return "net";
    case Category::kSrm:
      return "srm";
    case Category::kFault:
      return "fault";
  }
  return "?";
}

// Doubles print with enough digits to round-trip exactly (shortest form
// would be nicer; 17 significant digits is sufficient and simple).
void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

const std::vector<EventSpec>& all_specs() { return specs(); }

const EventSpec& spec_of(EventType type) {
  const auto it = by_type().find(static_cast<std::uint16_t>(type));
  if (it == by_type().end()) {
    throw std::out_of_range("trace::spec_of: unknown event type");
  }
  return *it->second;
}

const EventSpec* spec_by_name(const std::string& name) {
  const auto it = by_name().find(name);
  return it == by_name().end() ? nullptr : it->second;
}

Category category_of(EventType type) { return spec_of(type).category; }

// ---------------------------------------------------------------------------
// Mask parsing
// ---------------------------------------------------------------------------

std::uint32_t parse_mask(const std::string& text) {
  if (text.empty() || text == "none") return kMaskNone;
  if (text == "all") return kMaskAll;
  if (text.find_first_not_of("0123456789") == std::string::npos) {
    return static_cast<std::uint32_t>(std::stoul(text)) & kMaskAll;
  }
  std::uint32_t mask = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find_first_of(",+", start);
    const std::string part = text.substr(
        start, end == std::string::npos ? std::string::npos : end - start);
    if (part == "sim") {
      mask |= static_cast<std::uint32_t>(Category::kSim);
    } else if (part == "net") {
      mask |= static_cast<std::uint32_t>(Category::kNet);
    } else if (part == "srm") {
      mask |= static_cast<std::uint32_t>(Category::kSrm);
    } else if (part == "fault") {
      mask |= static_cast<std::uint32_t>(Category::kFault);
    } else if (part == "all") {
      mask |= kMaskAll;
    } else if (!part.empty()) {
      throw std::invalid_argument("trace::parse_mask: unknown category '" +
                                  part + "'");
    }
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return mask;
}

std::string format_mask(std::uint32_t mask) {
  if ((mask & kMaskAll) == 0) return "none";
  std::string out;
  for (Category c :
       {Category::kSim, Category::kNet, Category::kSrm, Category::kFault}) {
    if ((mask & static_cast<std::uint32_t>(c)) == 0) continue;
    if (!out.empty()) out += ',';
    out += category_name(c);
  }
  return out;
}

// ---------------------------------------------------------------------------
// JSONL backend
// ---------------------------------------------------------------------------

std::string JsonlSink::to_line(const Event& event) {
  const EventSpec& spec = spec_of(event.type);
  std::string line;
  line.reserve(160);
  line += "{\"t\":";
  append_double(line, event.t);
  line += ",\"cat\":\"";
  line += category_name(spec.category);
  line += "\",\"ev\":\"";
  line += spec.name;
  line += "\",\"actor\":";
  line += std::to_string(event.actor);
  const auto add_int = [&line](const char* field, std::uint64_t v) {
    if (field == nullptr) return;
    line += ",\"";
    line += field;
    line += "\":";
    line += std::to_string(v);
  };
  add_int(spec.a, event.a);
  add_int(spec.b, event.b);
  add_int(spec.c, event.c);
  add_int(spec.d, event.d);
  add_int(spec.e, event.e);
  const auto add_num = [&line](const char* field, double v) {
    if (field == nullptr) return;
    line += ",\"";
    line += field;
    line += "\":";
    append_double(line, v);
  };
  add_num(spec.x, event.x);
  add_num(spec.y, event.y);
  line += '}';
  return line;
}

void TeeSink::add(Sink* sink) {
  if (sink == nullptr) {
    throw std::invalid_argument("trace::TeeSink::add: null sink");
  }
  sinks_.push_back(sink);
}

void JsonlSink::on_event(const Event& event) {
  *out_ << to_line(event) << '\n';
}

void JsonlSink::flush() { out_->flush(); }

namespace {

// Minimal parser for the exact object shape to_line() writes: one flat JSON
// object of string/number fields per line.  Not a general JSON parser.
struct LineFields {
  std::unordered_map<std::string, std::string> fields;  // raw value text
};

LineFields parse_line(const std::string& line, std::size_t line_no) {
  LineFields out;
  std::size_t i = line.find('{');
  if (i == std::string::npos) {
    throw std::runtime_error("trace::read_jsonl: line " +
                             std::to_string(line_no) + ": not an object");
  }
  ++i;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ',' || line[i] == ' ')) ++i;
    if (i < line.size() && line[i] == '}') break;
    if (i >= line.size() || line[i] != '"') {
      throw std::runtime_error("trace::read_jsonl: line " +
                               std::to_string(line_no) + ": expected key");
    }
    const std::size_t key_end = line.find('"', i + 1);
    if (key_end == std::string::npos) {
      throw std::runtime_error("trace::read_jsonl: line " +
                               std::to_string(line_no) + ": unterminated key");
    }
    const std::string key = line.substr(i + 1, key_end - i - 1);
    i = key_end + 1;
    if (i >= line.size() || line[i] != ':') {
      throw std::runtime_error("trace::read_jsonl: line " +
                               std::to_string(line_no) + ": expected ':'");
    }
    ++i;
    std::string value;
    if (i < line.size() && line[i] == '"') {
      const std::size_t val_end = line.find('"', i + 1);
      if (val_end == std::string::npos) {
        throw std::runtime_error("trace::read_jsonl: line " +
                                 std::to_string(line_no) +
                                 ": unterminated value");
      }
      value = line.substr(i + 1, val_end - i - 1);
      i = val_end + 1;
    } else {
      const std::size_t val_end = line.find_first_of(",}", i);
      value = line.substr(i, val_end - i);
      i = val_end;
    }
    out.fields[key] = value;
  }
  return out;
}

}  // namespace

std::vector<Event> read_jsonl(std::istream& in) {
  std::vector<Event> events;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const LineFields parsed = parse_line(line, line_no);
    const auto ev = parsed.fields.find("ev");
    if (ev == parsed.fields.end()) {
      throw std::runtime_error("trace::read_jsonl: line " +
                               std::to_string(line_no) + ": missing 'ev'");
    }
    const EventSpec* spec = spec_by_name(ev->second);
    if (spec == nullptr) {
      throw std::runtime_error("trace::read_jsonl: line " +
                               std::to_string(line_no) +
                               ": unknown event '" + ev->second + "'");
    }
    Event e;
    e.type = spec->type;
    const auto get = [&parsed](const char* field) -> const std::string* {
      if (field == nullptr) return nullptr;
      const auto it = parsed.fields.find(field);
      return it == parsed.fields.end() ? nullptr : &it->second;
    };
    if (const std::string* v = get("t")) e.t = std::stod(*v);
    if (const std::string* v = get("actor")) e.actor = std::stoull(*v);
    const auto get_int = [&get](const char* field, std::uint64_t& slot) {
      if (const std::string* v = get(field)) slot = std::stoull(*v);
    };
    get_int(spec->a, e.a);
    get_int(spec->b, e.b);
    get_int(spec->c, e.c);
    get_int(spec->d, e.d);
    get_int(spec->e, e.e);
    if (const std::string* v = get(spec->x)) e.x = std::stod(*v);
    if (const std::string* v = get(spec->y)) e.y = std::stod(*v);
    events.push_back(e);
  }
  return events;
}

// ---------------------------------------------------------------------------
// Binary backend
// ---------------------------------------------------------------------------

namespace {

constexpr char kBinaryMagic[6] = {'S', 'R', 'M', 'T', 'R', 'C'};
constexpr std::uint8_t kBinaryVersion = 1;
// type(2) + t(8) + actor(8) + a..e(40) + x,y(16)
constexpr std::size_t kRecordBytes = 74;

void put_u64(char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

void put_f64(char* p, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(p, bits);
}

double get_f64(const char* p) {
  const std::uint64_t bits = get_u64(p);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

BinarySink::BinarySink(std::ostream& out) : out_(&out) {
  char header[8];
  std::memcpy(header, kBinaryMagic, 6);
  header[6] = static_cast<char>(kBinaryVersion);
  header[7] = 0;
  out_->write(header, sizeof(header));
}

void BinarySink::on_event(const Event& event) {
  char rec[kRecordBytes];
  const auto type = static_cast<std::uint16_t>(event.type);
  rec[0] = static_cast<char>(type & 0xFF);
  rec[1] = static_cast<char>(type >> 8);
  put_f64(rec + 2, event.t);
  put_u64(rec + 10, event.actor);
  put_u64(rec + 18, event.a);
  put_u64(rec + 26, event.b);
  put_u64(rec + 34, event.c);
  put_u64(rec + 42, event.d);
  put_u64(rec + 50, event.e);
  put_f64(rec + 58, event.x);
  put_f64(rec + 66, event.y);
  out_->write(rec, sizeof(rec));
}

void BinarySink::flush() { out_->flush(); }

std::vector<Event> read_binary(std::istream& in) {
  char header[8];
  in.read(header, sizeof(header));
  if (in.gcount() != sizeof(header) ||
      std::memcmp(header, kBinaryMagic, 6) != 0) {
    throw std::runtime_error("trace::read_binary: bad magic");
  }
  if (static_cast<std::uint8_t>(header[6]) != kBinaryVersion) {
    throw std::runtime_error("trace::read_binary: unsupported version");
  }
  std::vector<Event> events;
  char rec[kRecordBytes];
  for (;;) {
    in.read(rec, sizeof(rec));
    if (in.gcount() == 0) break;
    if (in.gcount() != static_cast<std::streamsize>(sizeof(rec))) {
      throw std::runtime_error("trace::read_binary: truncated record");
    }
    Event e;
    const auto type = static_cast<std::uint16_t>(
        static_cast<unsigned char>(rec[0]) |
        (static_cast<unsigned char>(rec[1]) << 8));
    e.type = static_cast<EventType>(type);
    spec_of(e.type);  // validates the type
    e.t = get_f64(rec + 2);
    e.actor = get_u64(rec + 10);
    e.a = get_u64(rec + 18);
    e.b = get_u64(rec + 26);
    e.c = get_u64(rec + 34);
    e.d = get_u64(rec + 42);
    e.e = get_u64(rec + 50);
    e.x = get_f64(rec + 58);
    e.y = get_f64(rec + 66);
    events.push_back(e);
  }
  return events;
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

Tracer& Tracer::null() {
  static Tracer instance;
  return instance;
}

void Tracer::set_mask(std::uint32_t mask) {
  if (this == &null()) {
    throw std::logic_error("trace::Tracer::null() is immutable");
  }
  mask_.store(mask & kMaskAll, std::memory_order_relaxed);
}

void Tracer::set_sink(Sink* sink) {
  if (this == &null()) {
    throw std::logic_error("trace::Tracer::null() is immutable");
  }
  sink_ = sink;
}

}  // namespace srm::trace
