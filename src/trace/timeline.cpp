#include "trace/timeline.h"

#include <cstdio>
#include <map>

namespace srm::trace {

namespace {

// Times render with %.6g: recovery rounds live in seconds with microsecond
// structure, and 6 significant digits keep summaries stable and readable.
void append_time(std::string& out, double t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", t);
  out += buf;
}

bool names_adu(EventType type) {
  switch (type) {
    case EventType::kSrmAdaptReq:
    case EventType::kSrmAdaptRep:
      return false;
    // Budget transitions name a stream (d is unused) and parity sends name
    // parity ADUs that are not under recovery; folding either would create
    // spurious stories.  Only fec_reconstruct joins the lost ADU's story.
    case EventType::kSrmFecBudgetRaise:
    case EventType::kSrmFecBudgetDecay:
    case EventType::kSrmFecParity:
      return false;
    default:
      return category_of(type) == Category::kSrm;
  }
}

}  // namespace

std::string to_string(const AduKey& key) {
  std::string out = "src=" + std::to_string(key.source);
  out += " page=" + std::to_string(key.page_creator) + '.' +
         std::to_string(key.page_number);
  out += " seq=" + std::to_string(key.seq);
  return out;
}

RecoveryTimeline RecoveryTimeline::fold(const std::vector<Event>& events) {
  RecoveryTimeline tl;
  std::map<AduKey, std::size_t> index;
  for (const Event& ev : events) {
    if (!names_adu(ev.type)) continue;
    const AduKey key{ev.a, ev.b, ev.c, ev.d};
    auto [it, inserted] = index.try_emplace(key, tl.stories_.size());
    if (inserted) {
      tl.stories_.emplace_back();
      tl.stories_.back().adu = key;
    }
    RecoveryStory& story = tl.stories_[it->second];
    story.entries.push_back({ev.t, ev.type, ev.actor, ev.e, ev.x});
    switch (ev.type) {
      case EventType::kSrmLoss:
        if (!story.detected) {
          story.first_detect_time = ev.t;
          story.first_detector = ev.actor;
          story.detected = true;
        }
        ++story.detections;
        break;
      case EventType::kSrmReqSend:
        if (story.requests_sent == 0) {
          story.first_request_time = ev.t;
          story.first_requestor = ev.actor;
        }
        ++story.requests_sent;
        break;
      case EventType::kSrmReqBackoff:
        ++story.request_backoffs;
        story.suppression_order.push_back(ev.actor);
        break;
      case EventType::kSrmRepTimerSet:
        ++story.repair_timers_set;
        break;
      case EventType::kSrmRepSend:
        if (story.repairs_sent == 0) {
          story.first_repair_time = ev.t;
          story.first_responder = ev.actor;
        }
        ++story.repairs_sent;
        break;
      case EventType::kSrmRepSuppress:
        ++story.repair_suppressions;
        story.suppression_order.push_back(ev.actor);
        break;
      case EventType::kSrmRecovered:
        ++story.recoveries;
        story.last_recovery_time = ev.t;
        break;
      case EventType::kSrmFecReconstruct:
        ++story.fec_reconstructions;
        break;
      case EventType::kSrmAbandoned:
        ++story.abandoned;
        break;
      default:
        break;
    }
  }
  return tl;
}

const RecoveryStory* RecoveryTimeline::find(const AduKey& key) const {
  for (const RecoveryStory& story : stories_) {
    if (story.adu == key) return &story;
  }
  return nullptr;
}

std::size_t RecoveryTimeline::total_requests() const {
  std::size_t n = 0;
  for (const RecoveryStory& s : stories_) n += s.requests_sent;
  return n;
}

std::size_t RecoveryTimeline::total_repairs() const {
  std::size_t n = 0;
  for (const RecoveryStory& s : stories_) n += s.repairs_sent;
  return n;
}

std::string RecoveryTimeline::summary() const {
  std::string out;
  out += "recovery timeline: " + std::to_string(stories_.size()) +
         " loss story(ies)\n";
  for (const RecoveryStory& s : stories_) {
    out += "  [" + to_string(s.adu) + "] ";
    out += std::to_string(s.detections) + " detection(s)";
    if (s.detected) {
      out += " (first by " + std::to_string(s.first_detector) + " at t=";
      append_time(out, s.first_detect_time);
      out += ')';
    }
    out += "; " + std::to_string(s.requests_sent) + " request(s)";
    if (s.requests_sent > 0) {
      out += " (first by " + std::to_string(s.first_requestor) + " at t=";
      append_time(out, s.first_request_time);
      out += ')';
    }
    out += "; " + std::to_string(s.repairs_sent) + " repair(s)";
    if (s.repairs_sent > 0) {
      out += " (first by " + std::to_string(s.first_responder) + " at t=";
      append_time(out, s.first_repair_time);
      out += ')';
    }
    out += "; " + std::to_string(s.recoveries) + " recovered";
    // Rendered only when coded repair actually fired, so summaries of
    // non-FEC traces stay byte-identical to the pre-FEC format.
    if (s.fec_reconstructions > 0) {
      out += "; " + std::to_string(s.fec_reconstructions) +
             " fec-reconstructed";
    }
    if (s.abandoned > 0) {
      out += "; " + std::to_string(s.abandoned) + " abandoned";
    }
    out += '\n';
    if (!s.suppression_order.empty()) {
      out += "    suppression order:";
      for (std::uint64_t actor : s.suppression_order) {
        out += ' ' + std::to_string(actor);
      }
      out += '\n';
    }
  }
  return out;
}

}  // namespace srm::trace
