// Structured event tracing (the ns-style trace layer of the lineage SRM
// work; cf. "SRM at 30" in PAPERS.md).
//
// The paper's entire evaluation is built on per-loss recovery timelines —
// who detected a loss, whose request timer fired first, who got suppressed,
// who answered — so the simulator emits a structured, replayable stream of
// events from its three layers:
//
//   sim  - event-queue schedule / fire / cancel, with slab handle ids
//   net  - packet send / deliver / drop / TTL-prune, with link, TTL and
//          group context
//   srm  - timer set / fire / suppress, request / repair send / hear,
//          backoff, adaptive-parameter updates, recovery-scope decisions
//
// Zero cost when disabled: every instrumentation site is guarded by a single
// branch on a relaxed atomic bitmask (`Tracer::wants`).  Components hold a
// Tracer pointer that is never null (defaulting to the always-disabled
// `Tracer::null()`), so the disabled fast path is one load + test + branch
// and no event is ever constructed.  The mask is per-Tracer, not global:
// parallel replications (harness::ReplicationRunner) each own a Tracer and
// never share sinks, which keeps traces bit-identical across --threads.
//
// Events are flat PODs with generic slots (five integers, two doubles); a
// per-EventType schema table (`spec_of`) names each used slot, which is what
// the JSONL backend emits and the JSONL parser accepts.  The compact binary
// backend writes the raw slots.  Both round-trip losslessly through
// read_jsonl() / read_binary() into the same Event vector, so the
// RecoveryTimeline analyzer (trace/timeline.h) folds live captures and
// re-read files identically.
//
// This layer is deliberately below sim/net/srm in the dependency order: it
// knows nothing about DataName or NodeId.  Producers pack their identifiers
// into the generic slots (the srm convention for an ADU name is
// a=source, b=page_c, c=page_n, d=seq; see the schema table in trace.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace srm::trace {

// One bit per instrumented layer.  Values are stable across versions: they
// appear in binary trace files and in --trace-mask.
enum class Category : std::uint32_t {
  kSim = 1u << 0,
  kNet = 1u << 1,
  kSrm = 1u << 2,
  kFault = 1u << 3,  // injected network dynamics (src/fault)
};

inline constexpr std::uint32_t kMaskNone = 0;
inline constexpr std::uint32_t kMaskAll =
    static_cast<std::uint32_t>(Category::kSim) |
    static_cast<std::uint32_t>(Category::kNet) |
    static_cast<std::uint32_t>(Category::kSrm) |
    static_cast<std::uint32_t>(Category::kFault);

// Parses a mask string: comma/plus-separated category names ("srm,net"),
// "all", "none", or a raw decimal number.  Throws std::invalid_argument on
// unknown names.  format_mask is its inverse (canonical "sim,net,srm" form).
std::uint32_t parse_mask(const std::string& text);
std::string format_mask(std::uint32_t mask);

// Every traced event type, all layers.  The numeric values are the wire
// encoding of the binary backend — append only, never renumber.
enum class EventType : std::uint16_t {
  // --- sim (event queue) ---
  kSimSchedule = 0,   // a=slot, b=generation, x=when
  kSimFire = 1,       // a=slot, b=generation
  kSimCancel = 2,     // a=slot, b=generation
  // --- net (multicast network) ---
  kNetSend = 10,      // actor=from node, a=group, b=kind, c=ttl, d=scope
  kNetDeliver = 11,   // actor=to node, a=group, b=kind, c=from, d=hops, x=delay
  kNetDrop = 12,      // actor=from node, a=group, b=kind, c=link_to, d=link id
  kNetPrune = 13,     // actor=from node, a=group, b=kind, c=link_to, d=ttl
  // --- srm (protocol agent); actor is the member SourceId, and events
  // naming an ADU use a=src, b=page_c, c=page_n, d=seq ---
  kSrmLoss = 20,            // e=via_request, y=dist to source
  kSrmReqTimerSet = 21,     // e=backoffs, x=timer delay, y=dist
  kSrmReqFire = 22,         // e=backoffs
  kSrmReqSend = 23,         // e=ttl, x=escalated (0/1)
  kSrmReqHear = 24,         // e=requestor
  kSrmReqBackoff = 25,      // e=backoffs after, x=ignored (0/1)
  kSrmRepTimerSet = 26,     // e=requestor, x=timer delay, y=dist
  kSrmRepFire = 27,         // (no extra fields)
  kSrmRepSend = 28,         // e=ttl, x=step_one (0/1)
  kSrmRepHear = 29,         // e=responder
  kSrmRepSuppress = 30,     // e=responder
  kSrmRecovered = 31,       // x=recovery delay seconds
  kSrmAbandoned = 32,       // (no extra fields)
  kSrmAdaptReq = 33,        // x=c1, y=c2 (after an update)
  kSrmAdaptRep = 34,        // x=d1, y=d2
  kSrmScopeEscalate = 35,   // e=ttl used after escalation
  // --- srm coded repair (srm/fec; ARCHITECTURE.md §11).  Budget events
  // name the stream (a=src, b=page_c, c=page_n; d unused); parity and
  // reconstruct events name an ADU per the usual convention ---
  kSrmFecBudgetRaise = 36,  // e=k_new, x=k_old, y=loss evidence count
  kSrmFecBudgetDecay = 37,  // e=k_new, x=k_old, y=burst epoch active (0/1)
  kSrmFecParity = 38,       // d=parity seq, e=generation, x=scheme, y=k
  kSrmFecReconstruct = 39,  // d=recovered seq, e=generation, x=scheme,
                            // y=erasures repaired in this decode
  // --- fault (injected network dynamics); actor is the affected node for
  // membership events, 0 otherwise ---
  kFaultLinkDown = 40,   // a=link, b=end_a, c=end_b
  kFaultLinkUp = 41,     // a=link, b=end_a, c=end_b
  kFaultPartition = 42,  // a=partition ordinal, b=links cut
  kFaultHeal = 43,       // a=partition ordinal, b=links restored
  kFaultJoin = 44,       // actor=node
  kFaultLeave = 45,      // actor=node
  kFaultCrash = 46,      // actor=node
  kFaultRejoin = 47,     // actor=node
  kFaultBurstOn = 48,    // a=loss_good_ppm, b=loss_bad_ppm, x=p_gb, y=p_bg
  kFaultBurstOff = 49,   // (no extra fields)
};

// A traced event: timestamp, actor, and five integer + two double slots
// whose meaning depends on the type (see the schema table in trace.cpp and
// the per-type comments above).
struct Event {
  EventType type = EventType::kSimSchedule;
  double t = 0.0;            // virtual time
  std::uint64_t actor = 0;   // node id (sim/net) or member SourceId (srm)
  std::uint64_t a = 0, b = 0, c = 0, d = 0, e = 0;
  double x = 0.0, y = 0.0;

  friend bool operator==(const Event&, const Event&) = default;
};

// Schema entry for one EventType: its category, wire name, and the JSONL
// field name of each used slot (nullptr = slot unused by this type).
struct EventSpec {
  EventType type;
  Category category;
  const char* name;
  const char* a;
  const char* b;
  const char* c;
  const char* d;
  const char* e;
  const char* x;
  const char* y;
};

// Schema lookup; spec_of throws std::out_of_range for unknown types,
// spec_by_name returns nullptr for unknown names.
const EventSpec& spec_of(EventType type);
const EventSpec* spec_by_name(const std::string& name);
// All specs, for documentation generators and exhaustive tests.
const std::vector<EventSpec>& all_specs();

Category category_of(EventType type);

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

// Receives every emitted event that passes the mask.  Sinks are not
// thread-safe: one Tracer (and everything it instruments) must live on one
// thread, which is exactly the ReplicationRunner isolation model.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void on_event(const Event& event) = 0;
  virtual void flush() {}
};

// In-memory capture, for tests and for feeding RecoveryTimeline directly.
class VectorSink final : public Sink {
 public:
  void on_event(const Event& event) override { events_.push_back(event); }
  const std::vector<Event>& events() const { return events_; }
  void clear() { events_.clear(); }

 private:
  std::vector<Event> events_;
};

// Fans one event stream out to several sinks (e.g. a JSONL file plus an
// in-memory capture feeding the recovery-invariant checker).  Added sinks
// are not owned and must outlive the tee.
class TeeSink final : public Sink {
 public:
  void add(Sink* sink);
  void on_event(const Event& event) override {
    for (Sink* s : sinks_) s->on_event(event);
  }
  void flush() override {
    for (Sink* s : sinks_) s->flush();
  }

 private:
  std::vector<Sink*> sinks_;
};

// JSON Lines backend: one object per line, e.g.
//   {"t":3.25,"cat":"srm","ev":"req_send","actor":4,"src":0,"page_c":0,
//    "page_n":0,"seq":7,"ttl":255,"escalated":0}
// Only slots the type's schema names are emitted.  read_jsonl() parses this
// exact format back into Events.
class JsonlSink final : public Sink {
 public:
  explicit JsonlSink(std::ostream& out) : out_(&out) {}
  void on_event(const Event& event) override;
  void flush() override;

  // Renders one event as a single JSONL line (no trailing newline).
  static std::string to_line(const Event& event);

 private:
  std::ostream* out_;
};

// Compact binary backend: an 8-byte header ("SRMTRC" + version + pad), then
// one fixed-width 74-byte little-endian record per event.  ~4x smaller than
// JSONL and trivially seekable; read_binary() is its inverse.
class BinarySink final : public Sink {
 public:
  explicit BinarySink(std::ostream& out);
  void on_event(const Event& event) override;
  void flush() override;

 private:
  std::ostream* out_;
};

// File readers.  Both throw std::runtime_error on malformed input and
// ignore blank lines (JSONL).  Events come back in file order.
std::vector<Event> read_jsonl(std::istream& in);
std::vector<Event> read_binary(std::istream& in);

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

// The per-world trace hub: a category bitmask plus an optional sink.
// Instrumented components keep `Tracer* tracer_` (never null; see null())
// and guard each site with
//
//   if (tracer_->wants(Category::kSrm)) { ...build Event, tracer_->emit... }
//
// wants() is a single relaxed atomic load + bit test, so with tracing
// compiled in but disabled the hot paths pay one predictable branch
// (guarded by the micro_kernel regression bound; see EXPERIMENTS.md).
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // The shared always-disabled tracer components point at by default.  Its
  // mask is permanently zero; set_mask/set_sink on it are forbidden.
  static Tracer& null();

  bool wants(Category c) const {
    return (mask_.load(std::memory_order_relaxed) &
            static_cast<std::uint32_t>(c)) != 0;
  }
  std::uint32_t mask() const { return mask_.load(std::memory_order_relaxed); }

  // Enables the categories in `mask`.  Events only flow while a sink is
  // attached; set_mask on a sinkless tracer is allowed but emits nothing.
  void set_mask(std::uint32_t mask);
  // Attaches `sink` (not owned; pass nullptr to detach).
  void set_sink(Sink* sink);
  Sink* sink() const { return sink_; }

  // Forwards to the sink.  Callers must have passed a wants() check; emit
  // itself re-checks only the sink, not the mask.
  void emit(const Event& event) {
    if (sink_ != nullptr) sink_->on_event(event);
  }

 private:
  std::atomic<std::uint32_t> mask_{kMaskNone};
  Sink* sink_ = nullptr;
};

}  // namespace srm::trace
