// RecoveryTimeline: folds a raw trace into per-loss recovery stories.
//
// The paper's figures (3-12) are all statements about what happens between
// one dropped packet and the last member recovering it: who detected the
// loss, whose request timer fired first, who was suppressed, who answered,
// and how many duplicates leaked through.  This analyzer reconstructs
// exactly that narrative from the srm-category trace events (trace/trace.h)
// so tests and the srmsim CLI can assert on *timelines* — "exactly one
// request, sent by the member just below the congested link" — rather than
// only on aggregate counters.
//
// A story is keyed by the ADU (source, page, seq) under recovery and
// collects, in trace order:
//   loss        -> detections (one per affected member)
//   req_timer_set / req_fire / req_backoff    (the request state machines)
//   req_send    -> first_request_* milestones + duplicate accounting
//   rep_timer_set / rep_send / rep_suppress   (the repair side)
//   recovered / abandoned                      (per-member outcomes)
//
// Determinism: stories are ordered by first appearance in the trace, and
// every per-story list preserves trace order, so two traces of the same
// seeded run fold to byte-identical summaries (the ReplicationRunner
// thread-invariance test relies on this).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace srm::trace {

// The identity of one ADU as packed into srm-category trace events
// (slots a=src, b=page_c, c=page_n, d=seq).
struct AduKey {
  std::uint64_t source = 0;
  std::uint64_t page_creator = 0;
  std::uint64_t page_number = 0;
  std::uint64_t seq = 0;

  friend bool operator==(const AduKey&, const AduKey&) = default;
  friend auto operator<=>(const AduKey&, const AduKey&) = default;
};

std::string to_string(const AduKey& key);

// One member's appearance in a story (a detection, a send, a suppression,
// an outcome), in trace order.
struct StoryEntry {
  double t = 0.0;
  EventType type = EventType::kSrmLoss;
  std::uint64_t actor = 0;  // member SourceId
  std::uint64_t arg = 0;    // the event's e-slot (ttl / requestor / backoffs)
  double x = 0.0;           // the event's x-slot (delay / flag)

  friend bool operator==(const StoryEntry&, const StoryEntry&) = default;
};

// The folded recovery narrative of one loss.
struct RecoveryStory {
  AduKey adu;

  // Every srm event touching this ADU, in trace order.
  std::vector<StoryEntry> entries;

  // Detection.
  std::size_t detections = 0;          // members that detected the loss
  double first_detect_time = 0.0;
  std::uint64_t first_detector = 0;
  bool detected = false;

  // Requests.
  std::size_t requests_sent = 0;       // total REQUEST transmissions
  double first_request_time = 0.0;
  std::uint64_t first_requestor = 0;
  std::size_t request_backoffs = 0;    // timers pushed back by heard requests

  // Repairs.
  std::size_t repair_timers_set = 0;
  std::size_t repairs_sent = 0;        // total REPAIR transmissions
  double first_repair_time = 0.0;
  std::uint64_t first_responder = 0;
  std::size_t repair_suppressions = 0; // repair timers cancelled by a repair

  // Outcomes.
  std::size_t recoveries = 0;          // members whose pending request closed
  std::size_t abandoned = 0;
  double last_recovery_time = 0.0;
  // Members that rebuilt this ADU locally from parity (srm/fec) instead of
  // waiting for a repair; a subset of `recoveries` when a request was
  // already pending, extra otherwise.
  std::size_t fec_reconstructions = 0;

  // Suppression order: the actors of req_backoff and rep_suppress events in
  // trace order — the deterministic-suppression fingerprint of the round.
  std::vector<std::uint64_t> suppression_order;

  // Duplicates in the paper's sense: transmissions beyond the first.
  std::size_t duplicate_requests() const {
    return requests_sent > 0 ? requests_sent - 1 : 0;
  }
  std::size_t duplicate_repairs() const {
    return repairs_sent > 0 ? repairs_sent - 1 : 0;
  }
};

// Folds a trace (live VectorSink capture or read_jsonl/read_binary output)
// into per-loss stories.  Non-srm events and srm events that name no ADU
// (adaptive-parameter updates) are ignored.
class RecoveryTimeline {
 public:
  static RecoveryTimeline fold(const std::vector<Event>& events);

  // Stories in order of first appearance in the trace.
  const std::vector<RecoveryStory>& stories() const { return stories_; }
  const RecoveryStory* find(const AduKey& key) const;

  // Totals across stories (compare against aggregate metrics).
  std::size_t total_requests() const;
  std::size_t total_repairs() const;

  // Canonical multi-line text rendering: one line per story with its
  // milestone times, senders and counts, then one line per suppression.
  // Byte-identical across runs that produce identical traces; the
  // thread-invariance test compares exactly this string.
  std::string summary() const;

 private:
  std::vector<RecoveryStory> stories_;
};

}  // namespace srm::trace
