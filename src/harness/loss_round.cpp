#include "harness/loss_round.h"

#include <algorithm>
#include <limits>
#include <set>
#include <stdexcept>

#include "net/drop_policy.h"
#include "srm/messages.h"

namespace srm::harness {

namespace {

bool is_request(const net::Packet& p) {
  return dynamic_cast<const RequestMessage*>(p.payload.get()) != nullptr;
}

bool is_repair(const net::Packet& p) {
  return dynamic_cast<const RepairMessage*>(p.payload.get()) != nullptr;
}

}  // namespace

RoundResult run_loss_round(SimSession& session, const RoundSpec& spec,
                           SeqNo seq) {
  auto& net = session.network();
  auto& queue = session.queue();
  SrmAgent& source = session.agent_at(spec.source_node);
  const DataName dropped{source.id(), spec.page, seq};

  // --- instrumentation ------------------------------------------------------
  // Chain onto (and later restore) any observers already installed, e.g. a
  // ConformanceChecker or a bench's own counters.  Under the parallel kernel
  // there is one network per region, each observed on its own worker thread,
  // so every network gets its own recorder (no shared mutable state inside a
  // window); per-region records are folded after the run.  Timestamps come
  // from each network's own queue, which reads exactly what the sequential
  // clock would at that event.
  RoundResult result;
  const sim::Time round_start = session.now();
  struct Recorder {
    std::vector<double> request_times;
    std::vector<double> repair_times;
    std::vector<net::NodeId> repair_senders;
    std::vector<net::NodeId> repair_receivers;
    net::MulticastNetwork::SendObserver previous_send;
    net::MulticastNetwork::DeliveryObserver previous_delivery;
  };
  std::vector<Recorder> records(session.network_count());
  for (std::size_t r = 0; r < session.network_count(); ++r) {
    net::MulticastNetwork& n = session.network(r);
    Recorder& rec = records[r];
    rec.previous_send = n.send_observer();
    rec.previous_delivery = n.delivery_observer();
    n.set_send_observer([rec = &rec, n = &n, round_start](
                            net::NodeId from, const net::Packet& p) {
      if (is_request(p)) {
        rec->request_times.push_back(n->queue().now() - round_start);
      } else if (is_repair(p)) {
        rec->repair_times.push_back(n->queue().now() - round_start);
        rec->repair_senders.push_back(from);
      }
      if (rec->previous_send) rec->previous_send(from, p);
    });
    n.set_delivery_observer(
        [rec = &rec](const net::Packet& p, const net::DeliveryInfo& info) {
          if (is_repair(p)) rec->repair_receivers.push_back(info.receiver);
          if (rec->previous_delivery) rec->previous_delivery(p, info);
        });
  }
  // The recorders are stack-local: if the round throws (a fault plan ate the
  // drop or the source), the observers must come off before unwinding.
  const auto restore_observers = [&] {
    net.set_drop_policy(nullptr);
    for (std::size_t r = 0; r < session.network_count(); ++r) {
      session.network(r).set_send_observer(
          std::move(records[r].previous_send));
      session.network(r).set_delivery_observer(
          std::move(records[r].previous_delivery));
    }
  };

  // Snapshot per-agent sample counts so only this round's samples are read.
  struct Snapshot {
    std::size_t recoveries;
    std::size_t request_delays;
  };
  std::vector<Snapshot> before;
  before.reserve(session.member_count());
  for (std::size_t i = 0; i < session.member_count(); ++i) {
    const AgentMetrics& m = session.agent(i).metrics();
    before.push_back(Snapshot{m.recovery_delay_seconds.values().size(),
                              m.request_delay_rtt.values().size()});
  }
  const std::uint64_t links_before = session.network_stats().link_transmissions;

  // --- the loss -------------------------------------------------------------
  auto drop = std::make_shared<net::ScriptedLinkDrop>(
      spec.congested.from, spec.congested.to,
      [dropped](const net::Packet& p) {
        const auto* d = dynamic_cast<const DataMessage*>(p.payload.get());
        return d != nullptr && d->name() == dropped;
      });
  net.set_drop_policy(drop);

  const auto send = [&spec](SrmAgent& agent, Payload payload) {
    return spec.send_fn ? spec.send_fn(agent, spec.page, std::move(payload))
                        : agent.send_data(spec.page, std::move(payload));
  };
  try {
    const DataName sent = send(source, Payload{0xAB});
    if (sent != dropped) {
      throw std::logic_error("run_loss_round: unexpected sequence number");
    }
    queue.schedule_after(spec.inter_packet_gap, [&source, &send] {
      send(source, Payload{0xCD});
    });
    session.run();

    if (drop->drops_so_far() != 1) {
      throw std::logic_error("run_loss_round: packet was not dropped");
    }
  } catch (...) {
    restore_observers();
    throw;
  }

  // --- fold per-network records --------------------------------------------
  // Each recorder's vectors are time-ordered (its queue's clock is
  // monotone), and the folded values are plain timestamps/node-ids, so a
  // sorted merge reproduces the sequential recording exactly — equal
  // timestamps are indistinguishable in the result, and the reach sets are
  // order-free.
  std::set<net::NodeId> repair_reach;
  for (const Recorder& rec : records) {
    result.requests += rec.request_times.size();
    result.repairs += rec.repair_times.size();
    result.request_times.insert(result.request_times.end(),
                                rec.request_times.begin(),
                                rec.request_times.end());
    result.repair_times.insert(result.repair_times.end(),
                               rec.repair_times.begin(),
                               rec.repair_times.end());
    repair_reach.insert(rec.repair_senders.begin(), rec.repair_senders.end());
    repair_reach.insert(rec.repair_receivers.begin(),
                        rec.repair_receivers.end());
  }
  std::sort(result.request_times.begin(), result.request_times.end());
  std::sort(result.repair_times.begin(), result.repair_times.end());

  // --- collection -----------------------------------------------------------
  const auto affected = affected_members(net.routing(), spec.source_node,
                                         spec.congested,
                                         session.member_nodes());
  result.affected = affected.size();
  result.link_transmissions =
      session.network_stats().link_transmissions - links_before;

  // A member can be unreachable at collection time when a fault plan left
  // the topology partitioned; try_distance reads that as infinity.
  double min_dist = std::numeric_limits<double>::infinity();
  for (net::NodeId m : affected) {
    min_dist = std::min(min_dist, net.try_distance(spec.source_node, m));
  }

  double max_abs_delay = -1.0;
  double closest_req_delay = std::numeric_limits<double>::infinity();
  for (net::NodeId m : affected) {
    SrmAgent& agent = session.agent_at(m);
    const AgentMetrics& metrics = agent.metrics();
    const Snapshot& snap = before[std::distance(
        session.member_nodes().begin(),
        std::find(session.member_nodes().begin(),
                  session.member_nodes().end(), m))];

    const auto& delays = metrics.recovery_delay_seconds.values();
    const auto& delays_rtt = metrics.recovery_delay_rtt.values();
    if (delays.size() > snap.recoveries) {
      ++result.recovered;
      // Exactly one loss per round, so at most one new sample.
      const double abs = delays.back();
      if (abs > max_abs_delay) {
        max_abs_delay = abs;
        result.last_member_delay_rtt = delays_rtt.back();
        result.max_delay_seconds = abs;
      }
    }
    const auto& req_delays = metrics.request_delay_rtt.values();
    if (req_delays.size() > snap.request_delays &&
        net.try_distance(spec.source_node, m) <= min_dist) {
      closest_req_delay = std::min(closest_req_delay, req_delays.back());
    }
  }
  if (closest_req_delay < std::numeric_limits<double>::infinity()) {
    result.closest_request_delay_rtt = closest_req_delay;
    result.closest_request_delay_valid = true;
  }
  result.members_reached_by_repair = repair_reach.size();

  // --- teardown -------------------------------------------------------------
  restore_observers();
  return result;
}

}  // namespace srm::harness
