#include "harness/loss_round.h"

#include <algorithm>
#include <limits>
#include <set>
#include <stdexcept>

#include "net/drop_policy.h"
#include "srm/messages.h"

namespace srm::harness {

namespace {

bool is_request(const net::Packet& p) {
  return dynamic_cast<const RequestMessage*>(p.payload.get()) != nullptr;
}

bool is_repair(const net::Packet& p) {
  return dynamic_cast<const RepairMessage*>(p.payload.get()) != nullptr;
}

}  // namespace

RoundResult run_loss_round(SimSession& session, const RoundSpec& spec,
                           SeqNo seq) {
  auto& net = session.network();
  auto& queue = session.queue();
  SrmAgent& source = session.agent_at(spec.source_node);
  const DataName dropped{source.id(), spec.page, seq};

  // --- instrumentation ------------------------------------------------------
  // Chain onto (and later restore) any observers already installed, e.g. a
  // ConformanceChecker or a bench's own counters.
  RoundResult result;
  std::set<net::NodeId> repair_reach;
  const sim::Time round_start = queue.now();
  const net::MulticastNetwork::SendObserver previous_send =
      net.send_observer();
  const net::MulticastNetwork::DeliveryObserver previous_delivery =
      net.delivery_observer();
  net.set_send_observer([&](net::NodeId from, const net::Packet& p) {
    if (is_request(p)) {
      ++result.requests;
      result.request_times.push_back(queue.now() - round_start);
    } else if (is_repair(p)) {
      ++result.repairs;
      result.repair_times.push_back(queue.now() - round_start);
      repair_reach.insert(from);
    }
    if (previous_send) previous_send(from, p);
  });
  net.set_delivery_observer(
      [&](const net::Packet& p, const net::DeliveryInfo& info) {
        if (is_repair(p)) repair_reach.insert(info.receiver);
        if (previous_delivery) previous_delivery(p, info);
      });

  // Snapshot per-agent sample counts so only this round's samples are read.
  struct Snapshot {
    std::size_t recoveries;
    std::size_t request_delays;
  };
  std::vector<Snapshot> before;
  before.reserve(session.member_count());
  for (std::size_t i = 0; i < session.member_count(); ++i) {
    const AgentMetrics& m = session.agent(i).metrics();
    before.push_back(Snapshot{m.recovery_delay_seconds.values().size(),
                              m.request_delay_rtt.values().size()});
  }
  const std::uint64_t links_before = net.stats().link_transmissions;

  // --- the loss -------------------------------------------------------------
  auto drop = std::make_shared<net::ScriptedLinkDrop>(
      spec.congested.from, spec.congested.to,
      [dropped](const net::Packet& p) {
        const auto* d = dynamic_cast<const DataMessage*>(p.payload.get());
        return d != nullptr && d->name() == dropped;
      });
  net.set_drop_policy(drop);

  const DataName sent = source.send_data(spec.page, Payload{0xAB});
  if (sent != dropped) {
    throw std::logic_error("run_loss_round: unexpected sequence number");
  }
  queue.schedule_after(spec.inter_packet_gap, [&source, &spec] {
    source.send_data(spec.page, Payload{0xCD});
  });
  queue.run();

  if (drop->drops_so_far() != 1) {
    throw std::logic_error("run_loss_round: packet was not dropped");
  }

  // --- collection -----------------------------------------------------------
  const auto affected = affected_members(net.routing(), spec.source_node,
                                         spec.congested,
                                         session.member_nodes());
  result.affected = affected.size();
  result.link_transmissions = net.stats().link_transmissions - links_before;

  // A member can be unreachable at collection time when a fault plan left
  // the topology partitioned; try_distance reads that as infinity.
  double min_dist = std::numeric_limits<double>::infinity();
  for (net::NodeId m : affected) {
    min_dist = std::min(min_dist, net.try_distance(spec.source_node, m));
  }

  double max_abs_delay = -1.0;
  double closest_req_delay = std::numeric_limits<double>::infinity();
  for (net::NodeId m : affected) {
    SrmAgent& agent = session.agent_at(m);
    const AgentMetrics& metrics = agent.metrics();
    const Snapshot& snap = before[std::distance(
        session.member_nodes().begin(),
        std::find(session.member_nodes().begin(),
                  session.member_nodes().end(), m))];

    const auto& delays = metrics.recovery_delay_seconds.values();
    const auto& delays_rtt = metrics.recovery_delay_rtt.values();
    if (delays.size() > snap.recoveries) {
      ++result.recovered;
      // Exactly one loss per round, so at most one new sample.
      const double abs = delays.back();
      if (abs > max_abs_delay) {
        max_abs_delay = abs;
        result.last_member_delay_rtt = delays_rtt.back();
        result.max_delay_seconds = abs;
      }
    }
    const auto& req_delays = metrics.request_delay_rtt.values();
    if (req_delays.size() > snap.request_delays &&
        net.try_distance(spec.source_node, m) <= min_dist) {
      closest_req_delay = std::min(closest_req_delay, req_delays.back());
    }
  }
  if (closest_req_delay < std::numeric_limits<double>::infinity()) {
    result.closest_request_delay_rtt = closest_req_delay;
    result.closest_request_delay_valid = true;
  }
  result.members_reached_by_repair = repair_reach.size();

  // --- teardown -------------------------------------------------------------
  net.set_drop_policy(nullptr);
  net.set_send_observer(previous_send);
  net.set_delivery_observer(previous_delivery);
  return result;
}

}  // namespace srm::harness
