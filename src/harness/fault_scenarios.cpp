#include "harness/fault_scenarios.h"

#include <algorithm>
#include <stdexcept>

namespace srm::harness {

namespace {

// Nodes reachable from `start` without traversing link `skip`.
std::vector<net::NodeId> reachable_without(const net::Topology& topo,
                                           net::NodeId start,
                                           net::LinkId skip) {
  std::vector<bool> seen(topo.node_count(), false);
  std::vector<net::NodeId> stack{start};
  seen[start] = true;
  std::vector<net::NodeId> out;
  while (!stack.empty()) {
    const net::NodeId n = stack.back();
    stack.pop_back();
    out.push_back(n);
    for (const net::LinkEnd& e : topo.neighbors(n)) {
      if (e.link == skip || seen[e.peer]) continue;
      seen[e.peer] = true;
      stack.push_back(e.peer);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool contains(const std::vector<net::NodeId>& sorted, net::NodeId n) {
  return std::binary_search(sorted.begin(), sorted.end(), n);
}

}  // namespace

fault::MembershipHooks membership_hooks(SimSession& session) {
  fault::MembershipHooks hooks;
  hooks.join = [&session](net::NodeId node) {
    if (!session.has_member(node)) session.add_member(node);
  };
  hooks.leave = [&session](net::NodeId node, bool graceful) {
    if (session.has_member(node)) session.remove_member(node, graceful);
  };
  return hooks;
}

fault::FaultPlan partition_heal_plan(const net::Topology& topo,
                                     net::NodeId root, double t_down,
                                     double t_heal, util::Rng& rng,
                                     std::vector<net::NodeId>* island_out) {
  if (topo.link_count() == 0) {
    throw std::invalid_argument("partition_heal_plan: topology has no links");
  }
  const auto link = static_cast<net::LinkId>(rng.uniform_int(
      0, static_cast<std::int64_t>(topo.link_count()) - 1));
  const net::Link& l = topo.link(link);
  // The island is the side of the chosen link not containing the root.  On
  // a tree every link separates the graph in two; on a general graph where
  // the link is not a cut edge, fall back to the single far endpoint (the
  // partition event still cuts every boundary link of that island).
  std::vector<net::NodeId> island = reachable_without(topo, l.b, link);
  if (contains(island, root)) {
    island = reachable_without(topo, l.a, link);
    if (contains(island, root)) {
      island = {root == l.b ? l.a : l.b};
    }
  }
  if (island_out != nullptr) *island_out = island;
  fault::FaultPlan plan;
  plan.partition(t_down, std::move(island));
  plan.heal(t_heal, 0);
  return plan;
}

fault::FaultPlan churn_plan(const std::vector<net::NodeId>& members,
                            net::NodeId keep, std::size_t cycles,
                            double t_begin, double t_end, double downtime,
                            bool crash, util::Rng& rng) {
  std::vector<net::NodeId> pool;
  for (net::NodeId n : members) {
    if (n != keep) pool.push_back(n);
  }
  if (pool.empty()) {
    throw std::invalid_argument("churn_plan: no members eligible for churn");
  }
  fault::FaultPlan plan;
  for (std::size_t i = 0; i < cycles; ++i) {
    const net::NodeId victim = pool[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
    const double t = rng.uniform(t_begin, t_end);
    if (crash) {
      plan.crash(t, victim);
    } else {
      plan.leave(t, victim);
    }
    plan.rejoin(t + downtime, victim);
  }
  return plan;
}

fault::FaultPlan link_flap_plan(net::LinkId link, std::size_t flaps,
                                double t_begin, double period,
                                double downtime) {
  if (downtime >= period) {
    throw std::invalid_argument("link_flap_plan: downtime must be < period");
  }
  fault::FaultPlan plan;
  for (std::size_t i = 0; i < flaps; ++i) {
    const double t = t_begin + static_cast<double>(i) * period;
    plan.link_down(t, link);
    plan.link_up(t + downtime, link);
  }
  return plan;
}

}  // namespace srm::harness
