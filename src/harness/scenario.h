// Scenario construction helpers shared by the figure benches: picking
// session members, sources, and the "congested link" on the source-rooted
// multicast tree, and computing which members a given drop affects.
#pragma once

#include <utility>
#include <vector>

#include "net/routing.h"
#include "net/topology.h"
#include "util/rng.h"

namespace srm::harness {

// A directed edge of the multicast distribution tree, oriented downstream
// (from the source side toward the receivers).
struct DirectedLink {
  net::NodeId from;
  net::NodeId to;
};

// All directed links of the shortest-path tree from `source` that carry
// traffic to at least one of `members` (the member-pruned multicast tree).
std::vector<DirectedLink> multicast_tree_links(
    net::Routing& routing, net::NodeId source,
    const std::vector<net::NodeId>& members);

// Uniformly random congested link among the tree links (Sec. V: "we
// randomly choose a link on the shortest-path tree from source to the
// members").
DirectedLink choose_congested_link(net::Routing& routing, net::NodeId source,
                                   const std::vector<net::NodeId>& members,
                                   util::Rng& rng);

// The congested link adjacent to the source (used by several figures).
DirectedLink link_adjacent_to_source(net::Routing& routing,
                                     net::NodeId source,
                                     const std::vector<net::NodeId>& members);

// Members whose path from `source` traverses the directed link (i.e. the
// members that lose a packet dropped there).
std::vector<net::NodeId> affected_members(
    net::Routing& routing, net::NodeId source, DirectedLink congested,
    const std::vector<net::NodeId>& members);

// Chooses k member nodes uniformly from the n topology nodes.
std::vector<net::NodeId> choose_members(std::size_t node_count,
                                        std::size_t k, util::Rng& rng);

// The set of nodes a multicast with the given TTL from `origin` reaches,
// honoring per-link TTL thresholds (used by the local-recovery analysis).
std::vector<net::NodeId> ttl_reach(const net::Topology& topo,
                                   net::NodeId origin, int ttl);

// Smallest TTL from `origin` that reaches every node in `targets`;
// returns -1 if some target is unreachable at any TTL.
int min_ttl_to_reach_all(const net::Topology& topo, net::NodeId origin,
                         const std::vector<net::NodeId>& targets);

// Smallest TTL from `origin` that reaches at least one node in `targets`.
int min_ttl_to_reach_any(const net::Topology& topo, net::NodeId origin,
                         const std::vector<net::NodeId>& targets);

}  // namespace srm::harness
