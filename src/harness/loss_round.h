// One loss-recovery round, exactly as in Sec. V: the source multicasts a
// packet that the congested link drops, then a second packet that is not
// dropped; receivers downstream of the congested link detect the gap and the
// request/repair algorithms run until every member holds the dropped packet.
// The round runner collects the quantities the paper's figures plot.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "harness/scenario.h"
#include "harness/session.h"
#include "srm/messages.h"
#include "srm/names.h"

namespace srm::harness {

struct RoundSpec {
  net::NodeId source_node = 0;     // the member that sends the data
  DirectedLink congested{0, 0};    // directed link that drops the packet
  PageId page{0, 0};
  sim::Time inter_packet_gap = 1.0;  // between the dropped and next packet
  // How the source transmits (default: SrmAgent::send_data).  Framing
  // layers (srm/fec's FecSession) route both of the round's sends through
  // their own send path here; the returned name must still carry the seq
  // the runner expects to drop.
  std::function<DataName(SrmAgent&, const PageId&, Payload)> send_fn;
};

struct RoundResult {
  // Control traffic for this one loss.
  std::size_t requests = 0;  // total REQUEST transmissions, all members
  std::size_t repairs = 0;   // total REPAIR transmissions, all members

  std::size_t affected = 0;    // members sharing the loss
  std::size_t recovered = 0;   // of those, members that got the repair

  // Loss recovery delay of the member that received the repair last
  // (absolute), expressed in that member's RTT to the source (Fig. 3/4
  // bottom panels).
  double last_member_delay_rtt = 0.0;
  double max_delay_seconds = 0.0;

  // Request delay (timer set -> first request) of the affected member
  // closest to the source; minimum across ties (Sec. VI's metric).
  double closest_request_delay_rtt = 0.0;
  bool closest_request_delay_valid = false;

  // Distinct members that received (or sent) a REPAIR, for local-recovery
  // coverage measurements.
  std::size_t members_reached_by_repair = 0;

  // Network cost counters over the round.
  std::uint64_t link_transmissions = 0;

  // Transmission times of every request/repair, in round-relative virtual
  // time, ordered by send time.  Lets analysis benches count e.g. the
  // "initial burst" of requests (those within one propagation time of the
  // first), which is what the Sec. IV-B formulas describe.
  std::vector<double> request_times;
  std::vector<double> repair_times;

  // Requests sent within `window` seconds of the first request.
  std::size_t requests_within(double window) const {
    std::size_t n = 0;
    for (double t : request_times) {
      if (t <= request_times.front() + window) ++n;
    }
    return n;
  }
};

// Runs one round on an existing session.  `seq` is the sequence number of
// the dropped packet; the runner sends `seq` (dropped) and `seq + 1`.
// The session's drop policy is replaced for the duration of the round.
// Requires: the source node hosts a member; every member has contiguous
// state up to `seq` (fresh sessions and repeated rounds both satisfy this).
RoundResult run_loss_round(SimSession& session, const RoundSpec& spec,
                           SeqNo seq);

}  // namespace srm::harness
