// Online protocol-conformance checking.
//
// The extended report ([12]) describes "the tools that we used to verify
// that our simulator is correctly implementing the loss recovery
// algorithms"; this is our equivalent.  A ConformanceChecker taps the
// network's send/delivery observers (chaining any observers already
// installed) and verifies externally-observable Sec. III-B invariants on
// the live packet stream:
//
//   1. no-request-for-held-data: a member never multicasts a REQUEST for an
//      ADU it previously originated or demonstrably received,
//   2. no-request-after-repair: once a member received a REPAIR for an ADU,
//      it never requests that ADU again (names are persistent),
//   3. holddown: a member never sends two REPAIRs for the same ADU within
//      the 3*d_S hold-down window,
//   4. payload-consistency: every DATA/REPAIR for one name carries
//      byte-identical payload ("the name always refers to the same data"),
//   5. sequencing: a source's DATA sequence numbers are strictly increasing
//      per page,
//   6. scoping: a delivered REQUEST/REPAIR never traveled more hops than
//      its initial TTL allows.
//
// Violations are recorded, not thrown, so tests can assert on them and
// benches can run cheaply with checking enabled.
#pragma once

#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/network.h"
#include "srm/agent.h"
#include "srm/messages.h"

namespace srm::harness {

struct Violation {
  std::string rule;
  std::string detail;
  double when = 0.0;
};

class ConformanceChecker {
 public:
  // Chains onto the network's observers; `holddown_multiplier` must match
  // the sessions' SrmConfig (3.0 by default).  The directory maps message
  // sources to nodes for distance computations.
  ConformanceChecker(net::MulticastNetwork& network,
                     MemberDirectory& directory,
                     double holddown_multiplier = 3.0);
  ~ConformanceChecker();

  ConformanceChecker(const ConformanceChecker&) = delete;
  ConformanceChecker& operator=(const ConformanceChecker&) = delete;

  // Detaches from the network, restoring the previous observers.
  void detach();

  const std::vector<Violation>& violations() const { return violations_; }
  bool clean() const { return violations_.empty(); }
  std::string report() const;

  // Counters for sanity (what the checker actually saw).
  std::uint64_t data_seen() const { return data_seen_; }
  std::uint64_t requests_seen() const { return requests_seen_; }
  std::uint64_t repairs_seen() const { return repairs_seen_; }

 private:
  void on_send(net::NodeId from, const net::Packet& packet);
  void on_delivery(const net::Packet& packet, const net::DeliveryInfo& info);
  void flag(const std::string& rule, const std::string& detail);

  net::MulticastNetwork* network_;
  MemberDirectory* directory_;
  double holddown_multiplier_;

  net::MulticastNetwork::SendObserver previous_send_;
  net::MulticastNetwork::DeliveryObserver previous_delivery_;
  bool attached_ = false;

  // Possession evidence per member (node id): names originated or received.
  std::unordered_map<net::NodeId, std::unordered_set<DataName>> holds_;
  // Names for which a member received (or sent) a repair.
  std::unordered_map<net::NodeId, std::unordered_set<DataName>> repaired_;
  // Last repair send time per (node, name) for hold-down checking.
  std::map<std::pair<net::NodeId, DataName>, double> last_repair_send_;
  // Canonical payload per name (first seen wins).
  std::unordered_map<DataName, Payload> canonical_;
  // Highest DATA seq sent per (source node, page).
  std::map<std::pair<net::NodeId, PageId>, SeqNo> last_sent_seq_;
  std::set<std::pair<net::NodeId, PageId>> any_sent_;

  std::vector<Violation> violations_;
  std::uint64_t data_seen_ = 0;
  std::uint64_t requests_seen_ = 0;
  std::uint64_t repairs_seen_ = 0;
};

}  // namespace srm::harness
