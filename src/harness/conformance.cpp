#include "harness/conformance.h"

#include <cmath>
#include <sstream>

namespace srm::harness {

ConformanceChecker::ConformanceChecker(net::MulticastNetwork& network,
                                       MemberDirectory& directory,
                                       double holddown_multiplier)
    : network_(&network),
      directory_(&directory),
      holddown_multiplier_(holddown_multiplier) {
  previous_send_ = network_->send_observer();
  previous_delivery_ = network_->delivery_observer();
  network_->set_send_observer([this](net::NodeId from,
                                     const net::Packet& packet) {
    on_send(from, packet);
    if (previous_send_) previous_send_(from, packet);
  });
  network_->set_delivery_observer(
      [this](const net::Packet& packet, const net::DeliveryInfo& info) {
        on_delivery(packet, info);
        if (previous_delivery_) previous_delivery_(packet, info);
      });
  attached_ = true;
}

ConformanceChecker::~ConformanceChecker() { detach(); }

void ConformanceChecker::detach() {
  if (!attached_) return;
  attached_ = false;
  network_->set_send_observer(previous_send_);
  network_->set_delivery_observer(previous_delivery_);
}

void ConformanceChecker::flag(const std::string& rule,
                              const std::string& detail) {
  violations_.push_back(Violation{rule, detail, network_->queue().now()});
}

void ConformanceChecker::on_send(net::NodeId from, const net::Packet& packet) {
  const double now = network_->queue().now();

  if (const auto* data =
          dynamic_cast<const DataMessage*>(packet.payload.get())) {
    ++data_seen_;
    const DataName& name = data->name();
    holds_[from].insert(name);
    // 5. strictly increasing per-page sequence numbers from each source.
    const auto key = std::make_pair(from, name.page);
    if (any_sent_.count(key) && name.seq <= last_sent_seq_[key]) {
      flag("sequencing", "node " + std::to_string(from) + " sent seq " +
                             std::to_string(name.seq) + " after " +
                             std::to_string(last_sent_seq_[key]));
    }
    any_sent_.insert(key);
    last_sent_seq_[key] = name.seq;
    // 4. payload consistency.
    const Payload& p = data->payload() ? *data->payload() : Payload{};
    auto [it, inserted] = canonical_.try_emplace(name, p);
    if (!inserted && it->second != p) {
      flag("payload-consistency",
           "DATA " + to_string(name) + " differs from first transmission");
    }
    return;
  }

  if (const auto* req =
          dynamic_cast<const RequestMessage*>(packet.payload.get())) {
    ++requests_seen_;
    const DataName& name = req->name();
    // 1. no request for data this member demonstrably has.
    if (holds_[from].count(name)) {
      flag("no-request-for-held-data",
           "node " + std::to_string(from) + " requested " + to_string(name) +
               " which it holds");
    }
    // 2. no request after a received repair for the same name.
    if (repaired_[from].count(name)) {
      flag("no-request-after-repair",
           "node " + std::to_string(from) + " requested " + to_string(name) +
               " after its repair");
    }
    return;
  }

  if (const auto* rep =
          dynamic_cast<const RepairMessage*>(packet.payload.get())) {
    ++repairs_seen_;
    const DataName& name = rep->name();
    holds_[from].insert(name);  // sending a repair proves possession
    // 3. hold-down: two repairs for one name from one member must be
    // separated by at least holddown * d(member, data source).  Step-two
    // local repairs are re-multicasts by the requestor, exempt by design.
    if (!rep->local_step_one()) {
      const auto key = std::make_pair(from, name);
      const auto it = last_repair_send_.find(key);
      if (it != last_repair_send_.end()) {
        double d = 1.0;
        try {
          const net::NodeId src_node = directory_->node_of(name.source);
          d = from == src_node ? 0.0
                               : network_->try_distance(from, src_node);
          // Source partitioned away: no meaningful hold-down bound either.
          if (std::isinf(d)) d = 0.0;
        } catch (const std::out_of_range&) {
          d = 0.0;  // source departed; no meaningful hold-down bound
        }
        const double gap = network_->queue().now() - it->second;
        if (d > 0.0 && gap < holddown_multiplier_ * d - 1e-9) {
          std::ostringstream os;
          os << "node " << from << " repaired " << to_string(name)
             << " twice within " << gap << "s (holddown "
             << holddown_multiplier_ * d << "s)";
          flag("holddown", os.str());
        }
      }
      last_repair_send_[key] = now;
    }
    // 4. payload consistency for repairs too.
    const Payload& p = rep->payload() ? *rep->payload() : Payload{};
    auto [it2, inserted] = canonical_.try_emplace(name, p);
    if (!inserted && it2->second != p) {
      flag("payload-consistency",
           "REPAIR " + to_string(name) + " differs from original data");
    }
    return;
  }
}

void ConformanceChecker::on_delivery(const net::Packet& packet,
                                     const net::DeliveryInfo& info) {
  if (const auto* data =
          dynamic_cast<const DataMessage*>(packet.payload.get())) {
    holds_[info.receiver].insert(data->name());
    return;
  }
  if (const auto* rep =
          dynamic_cast<const RepairMessage*>(packet.payload.get())) {
    holds_[info.receiver].insert(rep->name());
    repaired_[info.receiver].insert(rep->name());
    // 6. scoping: hops within the initial TTL.
    if (info.hops > rep->initial_ttl()) {
      flag("scoping", "REPAIR " + to_string(rep->name()) + " traveled " +
                          std::to_string(info.hops) + " hops with ttl " +
                          std::to_string(rep->initial_ttl()));
    }
    return;
  }
  if (const auto* req =
          dynamic_cast<const RequestMessage*>(packet.payload.get())) {
    if (info.hops > req->initial_ttl()) {
      flag("scoping", "REQUEST " + to_string(req->name()) + " traveled " +
                          std::to_string(info.hops) + " hops with ttl " +
                          std::to_string(req->initial_ttl()));
    }
  }
}

std::string ConformanceChecker::report() const {
  std::ostringstream os;
  os << violations_.size() << " violation(s)\n";
  for (const Violation& v : violations_) {
    os << "  [" << v.rule << "] t=" << v.when << ": " << v.detail << "\n";
  }
  return os.str();
}

}  // namespace srm::harness
