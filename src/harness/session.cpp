#include "harness/session.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace srm::harness {

namespace {

// Automatic region count: one region per ~128 nodes, capped so tiny
// topologies stay sequential-ish and huge ones do not fragment the
// lookahead.  A pure function of the node count — never of thread count —
// so a given topology always produces the same region map.
std::uint32_t auto_region_count(std::size_t nodes) {
  const std::size_t r = nodes / 128;
  return static_cast<std::uint32_t>(std::clamp<std::size_t>(r, 1, 16));
}

}  // namespace

SimSession::SimSession(net::Topology topo,
                       std::vector<net::NodeId> member_nodes, Options options)
    : topo_(std::move(topo)),
      rng_(options.seed),
      options_(options),
      member_nodes_(std::move(member_nodes)) {
  if (options_.kernel_threads > 0) {
    const std::uint32_t target = options_.kernel_regions != 0
                                     ? options_.kernel_regions
                                     : auto_region_count(topo_.node_count());
    region_map_ = net::partition_regions(topo_, target);
    kernel_ = std::make_unique<sim::ParallelKernel>(region_map_.count,
                                                    region_map_.lookahead);
    if (region_map_.count > 1) {
      // Per-pair delay bounds widen the asynchronous windows beyond the
      // uniform lookahead for regions that are far apart in the topology.
      kernel_->set_region_distances(
          net::region_distance_matrix(topo_, region_map_));
    }
    nets_.reserve(region_map_.count);
    for (std::uint32_t r = 0; r < region_map_.count; ++r) {
      nets_.push_back(std::make_unique<net::MulticastNetwork>(
          kernel_->region_queue(r), topo_));
    }
    std::vector<net::MulticastNetwork*> peers;
    peers.reserve(nets_.size());
    for (auto& n : nets_) peers.push_back(n.get());
    for (std::uint32_t r = 0; r < region_map_.count; ++r) {
      nets_[r]->enable_pdes(kernel_.get(), &region_map_, r, peers);
    }
    // One trace lane per queue; components are wired to their lane up
    // front (mask zero = disabled) and set_tracer only flips masks.
    lanes_.reserve(region_map_.count + 1);
    for (std::uint32_t i = 0; i < region_map_.count + 1; ++i) {
      auto lane = std::make_unique<TraceLane>();
      lane->tracer.set_sink(&lane->sink);
      lanes_.push_back(std::move(lane));
    }
    kernel_->global_queue().set_tracer(&lanes_[0]->tracer);
    for (std::uint32_t r = 0; r < region_map_.count; ++r) {
      kernel_->region_queue(r).set_tracer(&lanes_[1 + r]->tracer);
      nets_[r]->set_tracer(&lanes_[1 + r]->tracer);
    }
  } else {
    region_map_.of.assign(topo_.node_count(), 0);
    region_map_.count = 1;
    nets_.push_back(std::make_unique<net::MulticastNetwork>(queue_, topo_));
  }

  if (options_.srm.hierarchy.enabled) {
    // Two-level reporting drives every member's schedule; the flat per-agent
    // session timer must not compete with it.
    options_.srm.session.enabled = false;
    // Local areas: an explicit count, or ~sqrt(G) so local fan-in and the
    // representative population grow together.
    const std::uint32_t target =
        options_.srm.hierarchy.areas != 0
            ? options_.srm.hierarchy.areas
            : static_cast<std::uint32_t>(std::max(
                  1.0, std::round(std::sqrt(static_cast<double>(
                           member_nodes_.size())))));
    area_map_ = net::partition_regions(topo_, target);
    // Local reports only need the sender's TTL-radius of the tree.
    for (auto& n : nets_) n->set_scoped_tree_cache(true);
    hierarchy_ = std::make_unique<SessionHierarchy>(
        directory_, options_.srm.hierarchy, area_map_.count, options_.seed);
  }

  agents_.reserve(member_nodes_.size());
  for (std::size_t i = 0; i < member_nodes_.size(); ++i) {
    const net::NodeId node = member_nodes_[i];
    auto agent = std::make_unique<SrmAgent>(
        net_of(node), directory_, node, /*id=*/static_cast<SourceId>(node),
        options_.group, options_.srm, rng_.fork());
    if (kernel_) agent->set_tracer(lane_tracer(node));
    agent->start();
    if (hierarchy_) hierarchy_->attach(*agent, area_map_.of[node]);
    index_of_[node] = i;
    agents_.push_back(std::move(agent));
  }
  if (hierarchy_) hierarchy_->start();
}

net::NetworkStats SimSession::network_stats() const {
  net::NetworkStats total;
  for (const auto& n : nets_) {
    const net::NetworkStats& s = n->stats();
    total.multicasts_sent += s.multicasts_sent;
    total.unicasts_sent += s.unicasts_sent;
    total.link_transmissions += s.link_transmissions;
    total.deliveries += s.deliveries;
    total.drops += s.drops;
    total.ttl_prunes += s.ttl_prunes;
    total.in_flight_invalidated += s.in_flight_invalidated;
  }
  return total;
}

std::size_t SimSession::run() {
  if (!kernel_) return queue_.run();
  const sim::ParallelKernel::RunStats stats =
      kernel_->run(options_.kernel_threads);
  merge_lane_traces();
  return static_cast<std::size_t>(stats.region_events + stats.global_events);
}

std::size_t SimSession::run_until(double t_end) {
  if (!kernel_) return queue_.run_until(t_end);
  const sim::ParallelKernel::RunStats stats =
      kernel_->run(options_.kernel_threads, t_end);
  merge_lane_traces();
  return static_cast<std::size_t>(stats.region_events + stats.global_events);
}

trace::Tracer* SimSession::lane_tracer(net::NodeId node) {
  return &lanes_[1 + region_map_.of[node]]->tracer;
}

trace::Tracer* SimSession::control_tracer() {
  if (!kernel_) return tracer_;
  return &lanes_[0]->tracer;
}

void SimSession::set_tracer(trace::Tracer* tracer) {
  tracer_ = tracer;
  if (!kernel_) {
    queue_.set_tracer(tracer);
    network().set_tracer(tracer);
    for (auto& a : agents_) a->set_tracer(tracer);
    return;
  }
  // Components stay wired to their lanes; only the lanes' masks follow the
  // user's tracer.  The merge in run() forwards into the user's sink.
  for (auto& lane : lanes_) lane->tracer.set_mask(tracer->mask());
}

void SimSession::merge_lane_traces() {
  if (lanes_.empty()) return;
  if (tracer_ == &trace::Tracer::null()) {
    // No consumer: drop whatever the lanes captured so they cannot grow
    // across runs.
    for (auto& lane : lanes_) lane->sink.clear();
    return;
  }
  bool any = false;
  for (const auto& lane : lanes_) {
    if (!lane->sink.events().empty()) {
      any = true;
      break;
    }
  }
  if (!any) return;
  // Each lane is already time-ordered (a queue's clock never goes
  // backwards), so a k-way merge by (t, lane) — global lane 0 winning ties,
  // then regions in index order — yields one deterministic stream.  This is
  // the "deterministic merge" half of the bit-identical-traces guarantee;
  // the other half is that each lane's content is worker-independent.
  std::vector<std::size_t> pos(lanes_.size(), 0);
  for (;;) {
    std::size_t best = lanes_.size();
    for (std::size_t l = 0; l < lanes_.size(); ++l) {
      const auto& events = lanes_[l]->sink.events();
      if (pos[l] >= events.size()) continue;
      if (best == lanes_.size() ||
          events[pos[l]].t < lanes_[best]->sink.events()[pos[best]].t) {
        best = l;
      }
    }
    if (best == lanes_.size()) break;
    tracer_->emit(lanes_[best]->sink.events()[pos[best]]);
    ++pos[best];
  }
  for (auto& lane : lanes_) lane->sink.clear();
}

SrmAgent& SimSession::agent_at(net::NodeId node) {
  const auto it = index_of_.find(node);
  if (it == index_of_.end()) {
    throw std::out_of_range("SimSession::agent_at: node has no member");
  }
  return *agents_[it->second];
}

SrmAgent& SimSession::add_member(net::NodeId node) {
  if (index_of_.count(node) != 0) {
    throw std::logic_error("SimSession::add_member: node already a member");
  }
  auto agent = std::make_unique<SrmAgent>(
      net_of(node), directory_, node, /*id=*/static_cast<SourceId>(node),
      options_.group, options_.srm, rng_.fork());
  agent->set_tracer(kernel_ ? lane_tracer(node) : tracer_);
  agent->start();
  if (hierarchy_) hierarchy_->attach(*agent, area_map_.of[node]);
  index_of_[node] = agents_.size();
  member_nodes_.push_back(node);
  agents_.push_back(std::move(agent));
  return *agents_.back();
}

void SimSession::remove_member(net::NodeId node, bool graceful) {
  const auto it = index_of_.find(node);
  if (it == index_of_.end()) {
    throw std::out_of_range("SimSession::remove_member: node has no member");
  }
  const std::size_t i = it->second;
  SrmAgent& agent = *agents_[i];
  if (graceful) agent.send_session_message();
  if (hierarchy_) hierarchy_->detach(agent);
  agent.stop();  // leaves the group, cancels timers, detaches, unbinds
  agents_.erase(agents_.begin() + static_cast<std::ptrdiff_t>(i));
  member_nodes_.erase(member_nodes_.begin() +
                      static_cast<std::ptrdiff_t>(i));
  index_of_.erase(it);
  for (auto& [n, idx] : index_of_) {
    if (idx > i) --idx;
  }
}

}  // namespace srm::harness
