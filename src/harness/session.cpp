#include "harness/session.h"

#include <stdexcept>

namespace srm::harness {

SimSession::SimSession(net::Topology topo,
                       std::vector<net::NodeId> member_nodes, Options options)
    : topo_(std::move(topo)),
      network_(queue_, topo_),
      rng_(options.seed),
      member_nodes_(std::move(member_nodes)) {
  agents_.reserve(member_nodes_.size());
  for (std::size_t i = 0; i < member_nodes_.size(); ++i) {
    const net::NodeId node = member_nodes_[i];
    auto agent = std::make_unique<SrmAgent>(
        network_, directory_, node, /*id=*/static_cast<SourceId>(node),
        options.group, options.srm, rng_.fork());
    agent->start();
    index_of_[node] = i;
    agents_.push_back(std::move(agent));
  }
}

SrmAgent& SimSession::agent_at(net::NodeId node) {
  const auto it = index_of_.find(node);
  if (it == index_of_.end()) {
    throw std::out_of_range("SimSession::agent_at: node has no member");
  }
  return *agents_[it->second];
}

}  // namespace srm::harness
