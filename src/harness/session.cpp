#include "harness/session.h"

#include <stdexcept>

namespace srm::harness {

SimSession::SimSession(net::Topology topo,
                       std::vector<net::NodeId> member_nodes, Options options)
    : topo_(std::move(topo)),
      network_(queue_, topo_),
      rng_(options.seed),
      options_(options),
      member_nodes_(std::move(member_nodes)) {
  agents_.reserve(member_nodes_.size());
  for (std::size_t i = 0; i < member_nodes_.size(); ++i) {
    const net::NodeId node = member_nodes_[i];
    auto agent = std::make_unique<SrmAgent>(
        network_, directory_, node, /*id=*/static_cast<SourceId>(node),
        options.group, options.srm, rng_.fork());
    agent->start();
    index_of_[node] = i;
    agents_.push_back(std::move(agent));
  }
}

SrmAgent& SimSession::agent_at(net::NodeId node) {
  const auto it = index_of_.find(node);
  if (it == index_of_.end()) {
    throw std::out_of_range("SimSession::agent_at: node has no member");
  }
  return *agents_[it->second];
}

SrmAgent& SimSession::add_member(net::NodeId node) {
  if (index_of_.count(node) != 0) {
    throw std::logic_error("SimSession::add_member: node already a member");
  }
  auto agent = std::make_unique<SrmAgent>(
      network_, directory_, node, /*id=*/static_cast<SourceId>(node),
      options_.group, options_.srm, rng_.fork());
  agent->set_tracer(tracer_);
  agent->start();
  index_of_[node] = agents_.size();
  member_nodes_.push_back(node);
  agents_.push_back(std::move(agent));
  return *agents_.back();
}

void SimSession::remove_member(net::NodeId node, bool graceful) {
  const auto it = index_of_.find(node);
  if (it == index_of_.end()) {
    throw std::out_of_range("SimSession::remove_member: node has no member");
  }
  const std::size_t i = it->second;
  SrmAgent& agent = *agents_[i];
  if (graceful) agent.send_session_message();
  agent.stop();  // leaves the group, cancels timers, detaches, unbinds
  agents_.erase(agents_.begin() + static_cast<std::ptrdiff_t>(i));
  member_nodes_.erase(member_nodes_.begin() +
                      static_cast<std::ptrdiff_t>(i));
  index_of_.erase(it);
  for (auto& [n, idx] : index_of_) {
    if (idx > i) --idx;
  }
}

}  // namespace srm::harness
