// Fault-scenario builders: canned FaultPlans for the network-dynamics
// experiments (Sec. III-D robustness), plus the wiring that connects a
// FaultInjector's membership events to a SimSession's agents.
#pragma once

#include <cstddef>
#include <vector>

#include "fault/injector.h"
#include "fault/plan.h"
#include "harness/session.h"
#include "net/routing.h"
#include "net/topology.h"
#include "util/rng.h"

namespace srm::harness {

// MembershipHooks that create/stop SrmAgents in `session`: join/rejoin adds
// a member at the node (no-op if already present), leave/crash removes it
// (no-op if absent) — fault plans can then be replayed against sessions
// whose membership already drifted.  The session must outlive the injector.
fault::MembershipHooks membership_hooks(SimSession& session);

// A partition/heal round trip: at `t_down`, cut `island` (chosen as the
// subtree under a random tree link so the cut severs exactly one link on a
// tree topology); at `t_heal`, restore it.  `island_out` (optional) receives
// the chosen island.
fault::FaultPlan partition_heal_plan(const net::Topology& topo,
                                     net::NodeId root, double t_down,
                                     double t_heal, util::Rng& rng,
                                     std::vector<net::NodeId>* island_out =
                                         nullptr);

// Membership churn: `cycles` leave/rejoin (or crash/rejoin) pairs spread
// uniformly over [t_begin, t_end), each hitting a random member of
// `members` (excluding `keep` — typically the data source).  `downtime` is
// how long a member stays away before rejoining.
fault::FaultPlan churn_plan(const std::vector<net::NodeId>& members,
                            net::NodeId keep, std::size_t cycles,
                            double t_begin, double t_end, double downtime,
                            bool crash, util::Rng& rng);

// Link flapping: `flaps` down/up cycles of `link`, starting at `t_begin`,
// `period` seconds apart, each outage lasting `downtime` seconds.
fault::FaultPlan link_flap_plan(net::LinkId link, std::size_t flaps,
                                double t_begin, double period,
                                double downtime);

}  // namespace srm::harness
