#include "harness/replication.h"

#include <algorithm>

namespace srm::harness {

unsigned default_thread_count() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ReplicationRunner::ReplicationRunner(unsigned threads)
    : threads_(threads == 0 ? default_thread_count() : threads) {}

ThreadBudget plan_thread_budget(unsigned requested_replication,
                                unsigned requested_kernel,
                                unsigned hardware) {
  if (hardware == 0) hardware = default_thread_count();
  ThreadBudget budget;
  // Each replication occupies max(1, K) threads while it runs: a sequential
  // session is inline work on its pool thread, a parallel session parks the
  // pool thread and runs K workers.
  const unsigned per_job = std::max(1u, requested_kernel);

  budget.kernel_threads = requested_kernel;
  if (per_job > hardware) {
    budget.kernel_threads = hardware;  // requested_kernel > hardware >= 1
    budget.reduced = true;
  }
  const unsigned room = std::max(1u, hardware / std::max(1u, budget.kernel_threads));
  if (requested_replication == 0) {
    budget.replication_threads = room;
  } else if (requested_replication > room) {
    budget.replication_threads = room;
    budget.reduced = true;
  } else {
    budget.replication_threads = requested_replication;
  }
  return budget;
}

}  // namespace srm::harness
