#include "harness/replication.h"

#include <algorithm>

namespace srm::harness {

unsigned default_thread_count() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ReplicationRunner::ReplicationRunner(unsigned threads)
    : threads_(threads == 0 ? default_thread_count() : threads) {}

}  // namespace srm::harness
