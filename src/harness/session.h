// A complete simulated SRM session: event queue, multicast network over a
// topology, member directory, and one SrmAgent per member node.
// This is the top-level object benches, examples and integration tests
// construct; everything in it is deterministic given the seed.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "net/network.h"
#include "net/topology.h"
#include "sim/event_queue.h"
#include "srm/agent.h"
#include "srm/config.h"
#include "util/rng.h"

namespace srm::harness {

class SimSession {
 public:
  struct Options {
    SrmConfig srm;
    std::uint64_t seed = 1;
    net::GroupId group = 1;
  };

  // Builds the world and starts an agent at every node in `member_nodes`.
  // Member Source-IDs equal their node ids (a simulator convenience; the
  // directory still mediates every id -> node lookup).
  SimSession(net::Topology topo, std::vector<net::NodeId> member_nodes,
             Options options);

  sim::EventQueue& queue() { return queue_; }
  net::MulticastNetwork& network() { return network_; }
  const net::Topology& topology() const { return topo_; }
  // Mutable access for fault injection (link dynamics).  The network and
  // every routing cache revalidate via Topology::version().
  net::Topology& mutable_topology() { return topo_; }
  MemberDirectory& directory() { return directory_; }
  util::Rng& rng() { return rng_; }
  const Options& options() const { return options_; }

  const std::vector<net::NodeId>& member_nodes() const {
    return member_nodes_;
  }
  std::size_t member_count() const { return member_nodes_.size(); }

  SrmAgent& agent_at(net::NodeId node);
  SrmAgent& agent(std::size_t index) { return *agents_.at(index); }
  bool has_member(net::NodeId node) const {
    return index_of_.count(node) != 0;
  }

  // --- membership dynamics (fault injection / churn) -----------------------

  // Starts a new member at `node` (Source-ID = node id, as in the
  // constructor).  The agent inherits the session's config, group and
  // tracer.  Throws std::logic_error if the node already hosts a member.
  SrmAgent& add_member(net::NodeId node);

  // Stops and destroys the member at `node`.  Graceful departure sends one
  // final session message first (a leaving member saying goodbye); a crash
  // (graceful=false) is silent.  Either way the agent leaves the group,
  // cancels its timers, detaches from the network and unbinds from the
  // directory before destruction.  Throws if the node hosts no member.
  void remove_member(net::NodeId node, bool graceful = true);

  // Applies fn to every agent.
  template <typename Fn>
  void for_each_agent(Fn&& fn) {
    for (auto& a : agents_) fn(*a);
  }

  // Points the whole world (event queue, network, every agent) at one
  // Tracer.  The caller owns the tracer and its sink and keeps both alive
  // for the session's lifetime; &trace::Tracer::null() detaches.  Tracers
  // are per-session, never shared across ReplicationRunner workers, which
  // is what keeps traces bit-identical across --threads values.
  void set_tracer(trace::Tracer* tracer) {
    tracer_ = tracer;
    queue_.set_tracer(tracer);
    network_.set_tracer(tracer);
    for (auto& a : agents_) a->set_tracer(tracer);
  }

 private:
  net::Topology topo_;
  sim::EventQueue queue_;
  net::MulticastNetwork network_;
  MemberDirectory directory_;
  util::Rng rng_;
  Options options_;
  std::vector<net::NodeId> member_nodes_;
  std::vector<std::unique_ptr<SrmAgent>> agents_;
  std::unordered_map<net::NodeId, std::size_t> index_of_;
  trace::Tracer* tracer_ = &trace::Tracer::null();
};

}  // namespace srm::harness
