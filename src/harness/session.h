// A complete simulated SRM session: event queue, multicast network over a
// topology, member directory, and one SrmAgent per member node.
// This is the top-level object benches, examples and integration tests
// construct; everything in it is deterministic given the seed.
//
// Two kernels, one facade.  With Options::kernel_threads == 0 (default) the
// session runs on a single sequential EventQueue, exactly as before.  With
// kernel_threads >= 1 it runs on the conservative parallel kernel
// (sim/pdes.h): the topology is partitioned into regions (region_map.h),
// each region gets its own EventQueue and MulticastNetwork, agents live on
// their region's network, and run() executes safe windows on
// kernel_threads workers.  The region count is a pure function of the
// topology (kernel_regions, or an automatic size), never of the thread
// count, so results — figure stats, traces, recovery invariants — are
// bit-identical across kernel_threads 1/2/8.  queue() exposes the kernel's
// serialized global queue: harness drivers and fault injectors schedule
// there, so topology mutation and membership churn always observe a
// quiescent world.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "net/network.h"
#include "net/region_map.h"
#include "net/topology.h"
#include "sim/event_queue.h"
#include "sim/pdes.h"
#include "srm/agent.h"
#include "srm/config.h"
#include "srm/session_hierarchy.h"
#include "util/rng.h"

namespace srm::harness {

class SimSession {
 public:
  struct Options {
    SrmConfig srm;
    std::uint64_t seed = 1;
    net::GroupId group = 1;
    // 0 = sequential kernel (legacy single EventQueue).  >= 1 = parallel
    // kernel with this many workers; 1 still exercises the full region/
    // window machinery (the reference point PDES determinism tests compare
    // higher thread counts against).
    unsigned kernel_threads = 0;
    // Target region count for the parallel kernel; 0 picks a size from the
    // node count.  Ignored when kernel_threads == 0.  Must be kept fixed
    // when comparing runs: the region map, not the worker count, is what
    // event order depends on.
    std::uint32_t kernel_regions = 0;
  };

  // Builds the world and starts an agent at every node in `member_nodes`.
  // Member Source-IDs equal their node ids (a simulator convenience; the
  // directory still mediates every id -> node lookup).
  SimSession(net::Topology topo, std::vector<net::NodeId> member_nodes,
             Options options);

  // The control queue: the sequential kernel's only queue, or the parallel
  // kernel's serialized global queue.  Schedule harness/fault events here.
  sim::EventQueue& queue() {
    return kernel_ ? kernel_->global_queue() : queue_;
  }
  // The control network (region 0 under the parallel kernel).  Control-plane
  // calls (drop policies, membership, invalidate_in_flight) fan out to every
  // region from any network, so this is the right handle for harness code;
  // per-region stats live on the individual networks (see network_stats()).
  net::MulticastNetwork& network() { return *nets_.front(); }
  net::MulticastNetwork& network(std::size_t region) { return *nets_.at(region); }
  std::size_t network_count() const { return nets_.size(); }
  // Session-wide totals (sum over regions; equals network().stats() when
  // sequential).
  net::NetworkStats network_stats() const;

  // Runs until no queue has work left.  Returns events executed.  Under the
  // parallel kernel this also folds the per-region trace lanes into the
  // user's sink (see set_tracer).
  std::size_t run();
  // Runs until virtual time `t_end` (events at exactly t_end execute;
  // clocks advance to t_end).  The handle for steady-state workloads that
  // never drain — hierarchy-mode session reporting reschedules forever, so
  // benches and tests measure a fixed horizon instead.
  std::size_t run_until(double t_end);
  // Virtual time: max over all queues (all clocks agree between runs).
  double now() const { return kernel_ ? kernel_->now() : queue_.now(); }

  // Parallel-kernel introspection (null/empty when sequential).
  sim::ParallelKernel* kernel() { return kernel_.get(); }
  const net::RegionMap& region_map() const { return region_map_; }
  unsigned kernel_threads() const { return options_.kernel_threads; }

  const net::Topology& topology() const { return topo_; }
  // Mutable access for fault injection (link dynamics).  The network and
  // every routing cache revalidate via Topology::version().
  net::Topology& mutable_topology() { return topo_; }
  MemberDirectory& directory() { return directory_; }
  util::Rng& rng() { return rng_; }
  const Options& options() const { return options_; }

  const std::vector<net::NodeId>& member_nodes() const {
    return member_nodes_;
  }
  std::size_t member_count() const { return member_nodes_.size(); }

  SrmAgent& agent_at(net::NodeId node);
  SrmAgent& agent(std::size_t index) { return *agents_.at(index); }

  // Two-level session reporting (Options::srm.hierarchy.enabled;
  // ARCHITECTURE.md §12).  Null when hierarchy mode is off.  The session
  // owns the coordinator; members are attached with the area the topology
  // partition assigned their node, and add_member/remove_member keep the
  // attachment in sync with membership churn.
  SessionHierarchy* hierarchy() { return hierarchy_.get(); }
  // Local-area partition (valid only in hierarchy mode): area_map().of[node]
  // is the area whose representative aggregates that node's reports.
  const net::RegionMap& area_map() const { return area_map_; }
  bool has_member(net::NodeId node) const {
    return index_of_.count(node) != 0;
  }

  // --- membership dynamics (fault injection / churn) -----------------------

  // Starts a new member at `node` (Source-ID = node id, as in the
  // constructor).  The agent inherits the session's config, group and
  // tracer.  Throws std::logic_error if the node already hosts a member.
  SrmAgent& add_member(net::NodeId node);

  // Stops and destroys the member at `node`.  Graceful departure sends one
  // final session message first (a leaving member saying goodbye); a crash
  // (graceful=false) is silent.  Either way the agent leaves the group,
  // cancels its timers, detaches from the network and unbinds from the
  // directory before destruction.  Throws if the node hosts no member.
  void remove_member(net::NodeId node, bool graceful = true);

  // Applies fn to every agent.
  template <typename Fn>
  void for_each_agent(Fn&& fn) {
    for (auto& a : agents_) fn(*a);
  }

  // Points the whole world (event queues, networks, every agent) at one
  // Tracer.  The caller owns the tracer and its sink and keeps both alive
  // for the session's lifetime; &trace::Tracer::null() detaches.  Tracers
  // are per-session, never shared across ReplicationRunner workers, which
  // is what keeps traces bit-identical across --threads values.
  //
  // Parallel kernel: components emit into one internal lane per queue
  // (global + each region) — sinks are not thread-safe, lanes are — and
  // run() merges the lanes into the caller's sink ordered by (time, lane),
  // global lane first on ties.  The merged stream is identical for every
  // kernel_threads value.  Set the tracer's mask before calling set_tracer;
  // later mask changes are picked up at the next set_tracer call.  Anything
  // scheduled on the global queue (e.g. a FaultInjector) should emit via
  // control_tracer() so its events take part in the same merge.
  void set_tracer(trace::Tracer* tracer);
  // The tracer components on the global/control queue should emit through:
  // the global trace lane under the parallel kernel, or the user's tracer
  // when sequential.
  trace::Tracer* control_tracer();

 private:
  struct TraceLane {
    trace::VectorSink sink;
    trace::Tracer tracer;
  };

  net::MulticastNetwork& net_of(net::NodeId node) {
    return *nets_[region_map_.of[node]];
  }
  trace::Tracer* lane_tracer(net::NodeId node);
  void merge_lane_traces();

  net::Topology topo_;
  sim::EventQueue queue_;  // sequential kernel (unused when kernel_ set)
  std::unique_ptr<sim::ParallelKernel> kernel_;
  net::RegionMap region_map_;
  std::vector<std::unique_ptr<net::MulticastNetwork>> nets_;
  // lanes_[0] = global queue, lanes_[1 + r] = region r.  Empty sequentially.
  std::vector<std::unique_ptr<TraceLane>> lanes_;
  MemberDirectory directory_;
  util::Rng rng_;
  Options options_;
  std::vector<net::NodeId> member_nodes_;
  std::vector<std::unique_ptr<SrmAgent>> agents_;
  std::unordered_map<net::NodeId, std::size_t> index_of_;
  net::RegionMap area_map_;  // hierarchy areas (independent of kernel regions)
  // Declared after agents_: destroyed first, so its destructor can still
  // unchain the agents' hooks.
  std::unique_ptr<SessionHierarchy> hierarchy_;
  trace::Tracer* tracer_ = &trace::Tracer::null();
};

}  // namespace srm::harness
