#include "harness/scenario.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>
#include <set>
#include <stdexcept>

namespace srm::harness {

std::vector<DirectedLink> multicast_tree_links(
    net::Routing& routing, net::NodeId source,
    const std::vector<net::NodeId>& members) {
  const net::Spt& t = routing.spt(source);
  std::set<std::pair<net::NodeId, net::NodeId>> edges;
  for (net::NodeId m : members) {
    if (m == source) continue;
    net::NodeId v = m;
    while (v != source) {
      const net::NodeId p = t.parent[v];
      if (p == net::kInvalidNode) break;
      if (!edges.emplace(p, v).second) break;  // shared prefix already added
      v = p;
    }
  }
  std::vector<DirectedLink> out;
  out.reserve(edges.size());
  for (const auto& [from, to] : edges) out.push_back(DirectedLink{from, to});
  return out;
}

DirectedLink choose_congested_link(net::Routing& routing, net::NodeId source,
                                   const std::vector<net::NodeId>& members,
                                   util::Rng& rng) {
  const auto links = multicast_tree_links(routing, source, members);
  if (links.empty()) {
    throw std::logic_error("choose_congested_link: empty multicast tree");
  }
  return links[rng.index(links.size())];
}

DirectedLink link_adjacent_to_source(net::Routing& routing,
                                     net::NodeId source,
                                     const std::vector<net::NodeId>& members) {
  for (const DirectedLink& l :
       multicast_tree_links(routing, source, members)) {
    if (l.from == source) return l;
  }
  throw std::logic_error("link_adjacent_to_source: none found");
}

std::vector<net::NodeId> affected_members(
    net::Routing& routing, net::NodeId source, DirectedLink congested,
    const std::vector<net::NodeId>& members) {
  const net::Spt& t = routing.spt(source);
  std::vector<net::NodeId> out;
  for (net::NodeId m : members) {
    if (m == source) continue;
    for (net::NodeId v = m; v != source; v = t.parent[v]) {
      if (t.parent[v] == net::kInvalidNode) break;
      if (t.parent[v] == congested.from && v == congested.to) {
        out.push_back(m);
        break;
      }
    }
  }
  return out;
}

std::vector<net::NodeId> choose_members(std::size_t node_count, std::size_t k,
                                        util::Rng& rng) {
  const auto idx = rng.sample_without_replacement(node_count, k);
  std::vector<net::NodeId> out;
  out.reserve(k);
  for (std::size_t i : idx) out.push_back(static_cast<net::NodeId>(i));
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<net::NodeId> ttl_reach(const net::Topology& topo,
                                   net::NodeId origin, int ttl) {
  // BFS carrying the remaining TTL; a hop is allowed when the packet's TTL
  // at the upstream node is >= the link threshold (and >= 1), after which
  // the TTL decrements.  Hop-count BFS is correct because all thresholds
  // constrain hops, not delay.
  std::vector<int> best(topo.node_count(), -1);
  std::deque<std::pair<net::NodeId, int>> q;
  best[origin] = ttl;
  q.emplace_back(origin, ttl);
  while (!q.empty()) {
    const auto [u, t] = q.front();
    q.pop_front();
    for (const net::LinkEnd& e : topo.neighbors(u)) {
      if (t < 1 || t < e.threshold) continue;
      const int nt = t - 1;
      if (nt > best[e.peer]) {
        best[e.peer] = nt;
        q.emplace_back(e.peer, nt);
      }
    }
  }
  std::vector<net::NodeId> out;
  for (net::NodeId v = 0; v < topo.node_count(); ++v) {
    if (v != origin && best[v] >= 0) out.push_back(v);
  }
  return out;
}

namespace {

// Minimum initial TTL needed for a packet from origin to reach `target`.
// With all thresholds 1 this is the hop count; larger thresholds raise it.
std::vector<int> min_ttl_to_each(const net::Topology& topo,
                                 net::NodeId origin) {
  constexpr int kUnreached = std::numeric_limits<int>::max();
  std::vector<int> need(topo.node_count(), kUnreached);
  need[origin] = 0;
  // Dijkstra-like relaxation on "required initial TTL": traversing a link
  // with threshold th from a node requiring t means the packet must still
  // have max(th, remaining) TTL there; required initial TTL at the peer is
  // max(need[u] + 1, threshold + depth(u))... computed incrementally:
  // carry (required_initial, hops) and relax.
  struct State {
    int required;
    int hops;
    net::NodeId node;
    bool operator>(const State& o) const {
      return required > o.required ||
             (required == o.required && hops > o.hops);
    }
  };
  std::priority_queue<State, std::vector<State>, std::greater<>> pq;
  std::vector<int> hops_at(topo.node_count(), kUnreached);
  hops_at[origin] = 0;
  pq.push(State{0, 0, origin});
  while (!pq.empty()) {
    const State s = pq.top();
    pq.pop();
    if (s.required > need[s.node]) continue;
    for (const net::LinkEnd& e : topo.neighbors(s.node)) {
      // TTL at this node must be >= threshold, i.e. initial >= hops + th
      // (and initial >= hops+1 to have TTL left to spend).
      const int required = std::max(
          s.required, s.hops + std::max(e.threshold, 1));
      const int nh = s.hops + 1;
      if (required < need[e.peer] ||
          (required == need[e.peer] && nh < hops_at[e.peer])) {
        need[e.peer] = required;
        hops_at[e.peer] = nh;
        pq.push(State{required, nh, e.peer});
      }
    }
  }
  return need;
}

}  // namespace

int min_ttl_to_reach_all(const net::Topology& topo, net::NodeId origin,
                         const std::vector<net::NodeId>& targets) {
  const auto need = min_ttl_to_each(topo, origin);
  int out = 0;
  for (net::NodeId t : targets) {
    if (t == origin) continue;
    if (need[t] == std::numeric_limits<int>::max()) return -1;
    out = std::max(out, need[t]);
  }
  return out;
}

int min_ttl_to_reach_any(const net::Topology& topo, net::NodeId origin,
                         const std::vector<net::NodeId>& targets) {
  const auto need = min_ttl_to_each(topo, origin);
  int out = std::numeric_limits<int>::max();
  for (net::NodeId t : targets) {
    if (t == origin) return 0;
    out = std::min(out, need[t]);
  }
  return out == std::numeric_limits<int>::max() ? -1 : out;
}

}  // namespace srm::harness
