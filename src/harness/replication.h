// Parallel replication runner.
//
// A figure sweep is many independent replications: each owns its own
// EventQueue / MulticastNetwork / agents, built from a seed drawn up front,
// so replications share no mutable state and can run on any thread.
// ReplicationRunner fans a batch of such jobs across a thread pool and
// collects results *by replication index*, which makes any downstream merge
// deterministic and independent of thread count or completion order:
// `--threads 1` is bit-for-bit identical to `--threads N`.
//
// Usage (see bench/common.h for the TrialSpec adapter):
//   ReplicationRunner runner(flags.get_int("threads", 0));
//   auto results = runner.map<RoundResult>(specs.size(), [&](std::size_t i) {
//     return run_trial(std::move(specs[i]));
//   });
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace srm::harness {

// Threads to use when the caller passes 0 ("pick for me"): the hardware
// concurrency, but never 0.
unsigned default_thread_count();

// Composition of the two thread knobs.  A bench can run R replications in
// parallel (--threads) while each replication's session runs K region
// workers (--kernel-threads); naively that is R*K live threads and the
// machine thrashes.  plan_thread_budget caps the product at the hardware
// concurrency, shrinking the *replication* side first — kernel threads are
// what the PDES benches are measuring, replication parallelism is just a
// convenience — and only then the kernel side.  Zeros mean "pick for me":
// requested_replication == 0 becomes the largest count the budget allows,
// requested_kernel is passed through (0 = sequential kernel, which costs
// one thread like any inline job).  `hardware == 0` reads the real
// hardware_concurrency(); tests pass an explicit value.
struct ThreadBudget {
  unsigned replication_threads = 1;  // ReplicationRunner size
  unsigned kernel_threads = 0;       // per-session worker count (0 = seq)
  bool reduced = false;              // an explicit request was scaled down
};
ThreadBudget plan_thread_budget(unsigned requested_replication,
                                unsigned requested_kernel,
                                unsigned hardware = 0);

class ReplicationRunner {
 public:
  // threads == 0 selects default_thread_count(); threads == 1 runs every
  // job inline on the calling thread (no pool, no synchronization).
  explicit ReplicationRunner(unsigned threads = 0);

  unsigned threads() const { return threads_; }

  // Runs fn(0) .. fn(count - 1), each exactly once, and returns the results
  // indexed by job.  fn must be safe to call concurrently from different
  // threads for different indices; Result must be default-constructible and
  // movable.  The first exception thrown by any job is rethrown on the
  // calling thread after all workers finish.
  template <typename Result, typename Fn>
  std::vector<Result> map(std::size_t count, Fn&& fn) const {
    std::vector<Result> results(count);
    if (threads_ <= 1 || count <= 1) {
      for (std::size_t i = 0; i < count; ++i) results[i] = fn(i);
      return results;
    }
    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr error;
    auto worker = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          results[i] = fn(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
        }
      }
    };
    const std::size_t n_workers =
        std::min<std::size_t>(threads_, count);
    std::vector<std::thread> pool;
    pool.reserve(n_workers);
    for (std::size_t t = 0; t < n_workers; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
    if (error) std::rethrow_exception(error);
    return results;
  }

 private:
  unsigned threads_;
};

}  // namespace srm::harness
