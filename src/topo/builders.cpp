#include "topo/builders.h"

#include <algorithm>
#include <deque>
#include <set>
#include <stdexcept>
#include <vector>

namespace srm::topo {

using net::NodeId;
using net::Topology;

Topology make_chain(std::size_t n, double link_delay) {
  if (n == 0) throw std::invalid_argument("make_chain: n == 0");
  Topology t(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    t.add_link(static_cast<NodeId>(i), static_cast<NodeId>(i + 1), link_delay);
  }
  return t;
}

Star make_star(std::size_t leaves, double link_delay) {
  if (leaves == 0) throw std::invalid_argument("make_star: no leaves");
  Star s{Topology(leaves + 1), 0, {}};
  s.leaves.reserve(leaves);
  for (std::size_t i = 1; i <= leaves; ++i) {
    const auto leaf = static_cast<NodeId>(i);
    s.topo.add_link(s.center, leaf, link_delay);
    s.leaves.push_back(leaf);
  }
  return s;
}

Topology make_bounded_degree_tree(std::size_t n, int degree,
                                  double link_delay) {
  if (n == 0) throw std::invalid_argument("make_bounded_degree_tree: n == 0");
  if (degree < 2) {
    throw std::invalid_argument("make_bounded_degree_tree: degree < 2");
  }
  Topology t(n);
  if (n == 1) return t;
  // BFS fill: node 0 may take `degree` children; every later node may take
  // degree-1 children (one incident edge already connects it to its parent).
  std::deque<std::pair<NodeId, int>> open;  // (node, remaining child slots)
  open.emplace_back(0, degree);
  NodeId next = 1;
  while (next < n) {
    if (open.empty()) {
      throw std::logic_error("make_bounded_degree_tree: ran out of slots");
    }
    auto& [parent, slots] = open.front();
    t.add_link(parent, next, link_delay);
    open.emplace_back(next, degree - 1);
    ++next;
    if (--slots == 0) open.pop_front();
  }
  return t;
}

Topology make_random_tree(std::size_t n, util::Rng& rng, double link_delay) {
  if (n == 0) throw std::invalid_argument("make_random_tree: n == 0");
  Topology t(n);
  if (n == 1) return t;
  if (n == 2) {
    t.add_link(0, 1, link_delay);
    return t;
  }
  // Uniform random labeled tree from a uniform random Prufer sequence of
  // length n-2.  Standard decoding with a degree array.
  std::vector<std::size_t> prufer(n - 2);
  for (auto& p : prufer) p = rng.index(n);
  std::vector<int> degree(n, 1);
  for (std::size_t p : prufer) ++degree[p];

  std::set<std::size_t> leaves;
  for (std::size_t v = 0; v < n; ++v) {
    if (degree[v] == 1) leaves.insert(v);
  }
  for (std::size_t p : prufer) {
    const std::size_t leaf = *leaves.begin();
    leaves.erase(leaves.begin());
    t.add_link(static_cast<NodeId>(leaf), static_cast<NodeId>(p), link_delay);
    if (--degree[p] == 1) leaves.insert(p);
  }
  const std::size_t u = *leaves.begin();
  const std::size_t v = *std::next(leaves.begin());
  t.add_link(static_cast<NodeId>(u), static_cast<NodeId>(v), link_delay);
  return t;
}

Topology make_random_graph(std::size_t n, std::size_t edges, util::Rng& rng,
                           double link_delay) {
  if (n < 2) throw std::invalid_argument("make_random_graph: n < 2");
  const std::size_t max_edges = n * (n - 1) / 2;
  if (edges < n - 1 || edges > max_edges) {
    throw std::invalid_argument("make_random_graph: edge count out of range");
  }
  Topology t = make_random_tree(n, rng, link_delay);
  std::set<std::pair<NodeId, NodeId>> present;
  for (const net::Link& l : t.links()) {
    present.emplace(std::min(l.a, l.b), std::max(l.a, l.b));
  }
  while (t.link_count() < edges) {
    const auto a = static_cast<NodeId>(rng.index(n));
    const auto b = static_cast<NodeId>(rng.index(n));
    if (a == b) continue;
    const auto key = std::make_pair(std::min(a, b), std::max(a, b));
    if (present.count(key)) continue;
    present.insert(key);
    t.add_link(a, b, link_delay);
  }
  return t;
}

TreeOfLans make_tree_of_lans(std::size_t routers, int degree,
                             std::size_t hosts_per_lan, double backbone_delay,
                             double lan_delay) {
  if (hosts_per_lan == 0) {
    throw std::invalid_argument("make_tree_of_lans: no hosts");
  }
  TreeOfLans out{make_bounded_degree_tree(routers, degree, backbone_delay),
                 {},
                 {}};
  out.routers.reserve(routers);
  for (std::size_t r = 0; r < routers; ++r) {
    out.routers.push_back(static_cast<NodeId>(r));
  }
  for (std::size_t r = 0; r < routers; ++r) {
    for (std::size_t h = 0; h < hosts_per_lan; ++h) {
      const NodeId host = out.topo.add_node();
      out.topo.add_link(static_cast<NodeId>(r), host, lan_delay);
      out.workstations.push_back(host);
    }
  }
  return out;
}

Topology make_ring(std::size_t n, double link_delay) {
  if (n < 3) throw std::invalid_argument("make_ring: n < 3");
  Topology t(n);
  for (std::size_t i = 0; i < n; ++i) {
    t.add_link(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n),
               link_delay);
  }
  return t;
}

Dumbbell make_dumbbell(std::size_t hosts_per_side, int bottleneck_hops,
                       double bottleneck_delay, double access_delay) {
  if (hosts_per_side == 0) {
    throw std::invalid_argument("make_dumbbell: no hosts");
  }
  if (bottleneck_hops < 1) {
    throw std::invalid_argument("make_dumbbell: bottleneck_hops < 1");
  }
  Dumbbell d{Topology(0), {}, {}, 0, 0};
  d.left_router = d.topo.add_node();
  NodeId prev = d.left_router;
  for (int h = 0; h < bottleneck_hops; ++h) {
    const NodeId next = d.topo.add_node();
    d.topo.add_link(prev, next, bottleneck_delay);
    prev = next;
  }
  d.right_router = prev;
  for (std::size_t i = 0; i < hosts_per_side; ++i) {
    const NodeId l = d.topo.add_node();
    d.topo.add_link(d.left_router, l, access_delay);
    d.left_hosts.push_back(l);
    const NodeId r = d.topo.add_node();
    d.topo.add_link(d.right_router, r, access_delay);
    d.right_hosts.push_back(r);
  }
  return d;
}

TransitStub make_transit_stub(std::size_t transit,
                              std::size_t stubs_per_transit,
                              std::size_t stub_size, util::Rng& rng,
                              double transit_delay, double stub_delay) {
  if (transit < 3) throw std::invalid_argument("make_transit_stub: transit < 3");
  if (stub_size == 0) {
    throw std::invalid_argument("make_transit_stub: stub_size == 0");
  }
  TransitStub out{make_ring(transit, transit_delay), {}, {}};
  for (std::size_t tn = 0; tn < transit; ++tn) {
    out.transit_nodes.push_back(static_cast<NodeId>(tn));
  }
  for (std::size_t tn = 0; tn < transit; ++tn) {
    for (std::size_t s = 0; s < stubs_per_transit; ++s) {
      // Each stub domain is a small random tree grafted onto the transit
      // node through its node 0.
      Topology stub = make_random_tree(stub_size, rng, stub_delay);
      std::vector<NodeId> local(stub_size);
      for (std::size_t v = 0; v < stub_size; ++v) {
        local[v] = out.topo.add_node();
        out.stub_nodes.push_back(local[v]);
      }
      for (const net::Link& l : stub.links()) {
        out.topo.add_link(local[l.a], local[l.b], stub_delay);
      }
      out.topo.add_link(static_cast<NodeId>(tn), local[0], stub_delay);
    }
  }
  return out;
}

void assign_subtree_regions(Topology& topo, NodeId root) {
  // BFS from each child of the root; everything reached without crossing the
  // root belongs to that child's region (1-based).  Root keeps region 0.
  topo.set_admin_region(root, 0);
  std::uint32_t region = 0;
  std::vector<bool> seen(topo.node_count(), false);
  seen[root] = true;
  for (const net::LinkEnd& e : topo.neighbors(root)) {
    ++region;
    std::deque<NodeId> q{e.peer};
    if (seen[e.peer]) continue;
    seen[e.peer] = true;
    while (!q.empty()) {
      const NodeId v = q.front();
      q.pop_front();
      topo.set_admin_region(v, region);
      for (const net::LinkEnd& f : topo.neighbors(v)) {
        if (!seen[f.peer]) {
          seen[f.peer] = true;
          q.push_back(f.peer);
        }
      }
    }
  }
}

}  // namespace srm::topo
