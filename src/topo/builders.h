// Topology generators for the scenarios of Sections IV-V:
// chains, stars, balanced bounded-degree trees, uniform random labeled trees
// (Prufer construction, equivalent to the labeling algorithm of Palmer [28]
// cited by the paper), random connected graphs (tree plus extra edges), and
// trees of routers with attached Ethernet-like LANs.
//
// All links default to delay 1.0 ("one unit of time to travel each link")
// and TTL threshold 1, matching the paper's normalization.
#pragma once

#include <cstddef>
#include <vector>

#include "net/topology.h"
#include "util/rng.h"

namespace srm::topo {

// A linear chain of n nodes: 0 - 1 - ... - n-1.
net::Topology make_chain(std::size_t n, double link_delay = 1.0);

struct Star {
  net::Topology topo;
  net::NodeId center;                // the hub router (not a session member)
  std::vector<net::NodeId> leaves;   // the G candidate member nodes
};

// A star with `leaves` leaf nodes around one center node (Sec. IV-B: "the
// center node is not a member of the multicast group", all links identical).
Star make_star(std::size_t leaves, double link_delay = 1.0);

// Balanced bounded-degree tree with exactly n nodes in which every interior
// node has total degree `degree` (so the root has `degree` children and every
// other interior node has degree-1 children).  Nodes are numbered in BFS
// order from the root (node 0).
net::Topology make_bounded_degree_tree(std::size_t n, int degree,
                                       double link_delay = 1.0);

// Uniform random labeled tree on n nodes via a random Prufer sequence.
net::Topology make_random_tree(std::size_t n, util::Rng& rng,
                               double link_delay = 1.0);

// Connected random graph: a uniform random spanning tree plus
// (edges - (n-1)) additional distinct random edges.  Requires
// n-1 <= edges <= n*(n-1)/2.
net::Topology make_random_graph(std::size_t n, std::size_t edges,
                                util::Rng& rng, double link_delay = 1.0);

struct TreeOfLans {
  net::Topology topo;
  std::vector<net::NodeId> routers;
  std::vector<net::NodeId> workstations;  // LAN hosts (session candidates)
};

// A bounded-degree tree of `routers` routers, each with `hosts_per_lan`
// workstations attached over fast LAN links (Sec. V-B mentions "each of the
// nodes ... is a router with an adjacent Ethernet with 5 workstations").
TreeOfLans make_tree_of_lans(std::size_t routers, int degree,
                             std::size_t hosts_per_lan,
                             double backbone_delay = 1.0,
                             double lan_delay = 0.1);

// A ring of n nodes (n >= 3): the smallest topology with redundant paths,
// exercising shortest-path tie-breaks and non-tree routing.
net::Topology make_ring(std::size_t n, double link_delay = 1.0);

struct Dumbbell {
  net::Topology topo;
  std::vector<net::NodeId> left_hosts;
  std::vector<net::NodeId> right_hosts;
  net::NodeId left_router;
  net::NodeId right_router;
};

// The classic dumbbell: two access stars joined by a bottleneck path of
// `bottleneck_hops` links (each of `bottleneck_delay`), hosts on 1-delay
// access links.  The canonical shape for shared-bottleneck loss.
Dumbbell make_dumbbell(std::size_t hosts_per_side, int bottleneck_hops = 1,
                       double bottleneck_delay = 5.0,
                       double access_delay = 1.0);

struct TransitStub {
  net::Topology topo;
  std::vector<net::NodeId> transit_nodes;
  std::vector<net::NodeId> stub_nodes;  // session candidates
};

// A GT-ITM-style transit-stub internetwork: a ring of `transit` backbone
// routers, each attached to `stubs_per_transit` stub domains, each a small
// random tree of `stub_size` nodes.  Backbone links are slower than stub
// links, giving the strong delay diversity SRM's timers exploit.
TransitStub make_transit_stub(std::size_t transit,
                              std::size_t stubs_per_transit,
                              std::size_t stub_size, util::Rng& rng,
                              double transit_delay = 5.0,
                              double stub_delay = 1.0);

// Assigns each subtree hanging off the root of a tree topology its own
// administrative region (region = index of the root's child subtree; the
// root itself stays in region 0).  Convenience for admin-scope tests.
void assign_subtree_regions(net::Topology& topo, net::NodeId root);

}  // namespace srm::topo
