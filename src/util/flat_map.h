// Sorted-vector associative container for hot-path message state.
//
// SRM session messages carry two per-member tables (the sequence-state
// report and the timestamp-echo table) that are built once per send and
// only searched on receive.  A node-based std::map costs one allocation
// per entry — O(G) per message, O(G^2) per session round — and chases
// pointers on every lookup.  FlatMap keeps the entries in one contiguous
// sorted vector: building is an append (amortized O(1) when keys arrive in
// order, as echo tables do), lookup is a binary search, and iteration is
// linear and cache-friendly in ascending key order, matching std::map's
// iteration order bit-for-bit.
//
// The interface is the read-side subset of std::map the protocol code uses
// (find/count/at/operator[]/range-for over pairs), so call sites read the
// same; inserts out of key order fall back to a shifting insert, which is
// fine for the small tables (per-page stream reports) that are built from
// unordered iteration.
#pragma once

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

namespace srm::util {

template <typename K, typename V>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;
  using const_iterator = typename std::vector<value_type>::const_iterator;
  using iterator = const_iterator;  // keys are immutable once stored

  FlatMap() = default;

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }  // keeps capacity
  void reserve(std::size_t n) { entries_.reserve(n); }

  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

  const_iterator find(const K& key) const {
    const auto it = lower_bound(key);
    if (it == entries_.end() || it->first != key) return entries_.end();
    return it;
  }

  std::size_t count(const K& key) const {
    return find(key) == end() ? 0 : 1;
  }

  const V& at(const K& key) const {
    const auto it = find(key);
    if (it == end()) throw std::out_of_range("FlatMap::at: missing key");
    return it->second;
  }

  // Insert-or-assign.  Appending in ascending key order is amortized O(1);
  // an out-of-order key shifts the tail (O(n)), acceptable for the small
  // tables built from unordered iteration.
  V& operator[](const K& key) {
    if (!entries_.empty() && entries_.back().first < key) {
      entries_.emplace_back(key, V{});
      return entries_.back().second;
    }
    const auto it = lower_bound(key);
    if (it != entries_.end() && it->first == key) {
      return mutable_iter(it)->second;
    }
    return entries_.emplace(mutable_iter(it), key, V{})->second;
  }

  void insert_or_assign(const K& key, V value) {
    (*this)[key] = std::move(value);
  }

  // Steals the other map's storage (used to recycle capacity between a
  // builder's scratch buffer and pooled messages).
  void swap(FlatMap& other) noexcept { entries_.swap(other.entries_); }

  friend bool operator==(const FlatMap&, const FlatMap&) = default;

 private:
  typename std::vector<value_type>::const_iterator lower_bound(
      const K& key) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const K& k) { return e.first < k; });
  }
  typename std::vector<value_type>::iterator mutable_iter(const_iterator it) {
    return entries_.begin() + (it - entries_.cbegin());
  }

  std::vector<value_type> entries_;
};

}  // namespace srm::util
