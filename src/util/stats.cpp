#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace srm::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::clear() {
  n_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  return n_ == 0 ? std::numeric_limits<double>::infinity() : min_;
}

double RunningStats::max() const {
  return n_ == 0 ? -std::numeric_limits<double>::infinity() : max_;
}

void Samples::add(double x) {
  values_.push_back(x);
  cache_valid_ = false;
}

void Samples::clear() {
  values_.clear();
  sorted_cache_.clear();
  cache_valid_ = true;
}

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

const std::vector<double>& Samples::sorted() const {
  if (!cache_valid_) {
    sorted_cache_ = values_;
    std::sort(sorted_cache_.begin(), sorted_cache_.end());
    cache_valid_ = true;
  }
  return sorted_cache_;
}

double Samples::quantile(double q) const {
  if (values_.empty()) throw std::logic_error("Samples::quantile: empty");
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("Samples::quantile: q outside [0,1]");
  }
  const std::vector<double>& v = sorted();
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= v.size()) return v.back();
  return v[lo] * (1.0 - frac) + v[lo + 1] * frac;
}

Ewma::Ewma(double alpha, double initial) : alpha_(alpha), value_(initial) {
  if (alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument("Ewma: alpha outside (0,1]");
  }
}

void Ewma::update(double sample) {
  if (!seeded_) {
    // First sample initializes the average so early rounds are not biased
    // toward the arbitrary initial value.
    value_ = sample;
    seeded_ = true;
    return;
  }
  value_ = (1.0 - alpha_) * value_ + alpha_ * sample;
}

void Ewma::reset(double value) {
  value_ = value;
  seeded_ = false;
}

Summary summarize(const Samples& s) {
  Summary out;
  out.count = s.count();
  if (s.empty()) return out;
  out.mean = s.mean();
  out.median = s.median();
  out.q1 = s.lower_quartile();
  out.q3 = s.upper_quartile();
  out.min = s.min();
  out.max = s.max();
  return out;
}

}  // namespace srm::util
