#include "util/rng.h"

#include <cassert>
#include <numeric>
#include <stdexcept>

namespace srm::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t keyed_u64(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                        std::uint64_t c) {
  // Fold each key through one splitmix64 step; the chained state makes the
  // mapping sensitive to every coordinate independently.
  std::uint64_t state = seed;
  std::uint64_t h = splitmix64(state);
  state ^= a;
  h ^= splitmix64(state);
  state ^= b;
  h ^= splitmix64(state);
  state ^= c;
  h ^= splitmix64(state);
  return h;
}

double keyed_unit(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                  std::uint64_t c) {
  // Top 53 bits -> [0, 1), the usual uniform-double construction.
  return static_cast<double>(keyed_u64(seed, a, b, c) >> 11) * 0x1.0p-53;
}

Rng::Rng(std::uint64_t seed) {
  // Expand the seed through splitmix64 so that adjacent user seeds (0, 1, 2,
  // ...) still produce uncorrelated mt19937_64 states.
  std::uint64_t s = seed;
  std::seed_seq seq{static_cast<std::uint32_t>(splitmix64(s)),
                    static_cast<std::uint32_t>(splitmix64(s)),
                    static_cast<std::uint32_t>(splitmix64(s)),
                    static_cast<std::uint32_t>(splitmix64(s))};
  engine_.seed(seq);
}

Rng Rng::fork() { return Rng(engine_()); }

double Rng::uniform(double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
  if (lo == hi) return lo;
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return std::bernoulli_distribution(p)(engine_);
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) throw std::invalid_argument("Rng::exponential: mean <= 0");
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  if (k > n) {
    throw std::invalid_argument("Rng::sample_without_replacement: k > n");
  }
  // Partial Fisher-Yates over an index vector: O(n) space, O(n + k) time.
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i),
                    static_cast<std::int64_t>(n) - 1));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

std::size_t Rng::index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::index: empty range");
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

std::uint64_t Rng::next_u64() { return engine_(); }

}  // namespace srm::util
