// Deterministic random-number utilities.
//
// Every stochastic choice in the simulator flows through an Rng instance that
// is constructed from an explicit 64-bit seed, so that any experiment can be
// reproduced exactly by re-running with the same seed.  Child generators can
// be forked with independent streams (e.g. one per simulated host) without
// the streams being correlated.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace srm::util {

// splitmix64: used to expand a user seed into well-distributed stream seeds.
// Reference: Steele, Lea & Flood, "Fast Splittable Pseudorandom Number
// Generators", OOPSLA 2014.
std::uint64_t splitmix64(std::uint64_t& state);

// Stateless keyed draws: a pure function of (seed, a, b, c) with no stream
// state to share or order-depend on.  Components whose draw order differs
// between the sequential and parallel kernels (e.g. per-member report
// jitter serviced from per-region timer wheels) key each draw by stable
// coordinates — (area, member slot, draw ordinal) — instead of consuming a
// shared Rng, so the value a given draw produces is identical no matter
// which worker, region or interleaving executes it.
std::uint64_t keyed_u64(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                        std::uint64_t c);

// The same draw mapped to a double in [0, 1).
double keyed_unit(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                  std::uint64_t c);

// A seeded random source.  Thin wrapper over mt19937_64 with the handful of
// distributions the simulator needs.  Copyable (copies the full state).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // A new generator whose stream is independent of this one; deterministic
  // given this generator's current state.
  Rng fork();

  // Uniform real in [lo, hi).  Requires lo <= hi; returns lo when lo == hi.
  double uniform(double lo, double hi);

  // Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Bernoulli trial with probability p of returning true.
  bool chance(double p);

  // Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  // k distinct values sampled uniformly from [0, n); k <= n.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Picks a uniformly random element index of a non-empty container size.
  std::size_t index(std::size_t n);

  std::uint64_t next_u64();

 private:
  std::mt19937_64 engine_;
};

}  // namespace srm::util
