#include "util/perf_json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

namespace srm::util {

namespace {

void skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
}

// Parses a JSON string literal at s[i] (expects '"'); returns false on
// malformed input.  Escapes are kept verbatim except \" and \\ which are
// resolved, which is all this writer ever emits.
bool parse_string(const std::string& s, std::size_t& i, std::string& out) {
  if (i >= s.size() || s[i] != '"') return false;
  ++i;
  out.clear();
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\' && i + 1 < s.size() &&
        (s[i + 1] == '"' || s[i + 1] == '\\')) {
      out.push_back(s[i + 1]);
      i += 2;
    } else {
      out.push_back(s[i]);
      ++i;
    }
  }
  if (i >= s.size()) return false;
  ++i;  // closing quote
  return true;
}

// A scalar value: a string literal or a run of non-delimiter characters
// (number / true / false / null).  Stored as raw JSON text.
bool parse_value(const std::string& s, std::size_t& i, std::string& out) {
  skip_ws(s, i);
  if (i < s.size() && s[i] == '"') {
    std::string inner;
    if (!parse_string(s, i, inner)) return false;
    out = "\"" + inner + "\"";
    return true;
  }
  const std::size_t start = i;
  while (i < s.size() && s[i] != ',' && s[i] != '}' &&
         !std::isspace(static_cast<unsigned char>(s[i]))) {
    ++i;
  }
  out = s.substr(start, i - start);
  return !out.empty();
}

bool parse_flat_object(const std::string& s, std::size_t& i,
                       std::map<std::string, std::string>& out) {
  skip_ws(s, i);
  if (i >= s.size() || s[i] != '{') return false;
  ++i;
  skip_ws(s, i);
  if (i < s.size() && s[i] == '}') {
    ++i;
    return true;
  }
  for (;;) {
    skip_ws(s, i);
    std::string key;
    if (!parse_string(s, i, key)) return false;
    skip_ws(s, i);
    if (i >= s.size() || s[i] != ':') return false;
    ++i;
    std::string value;
    if (!parse_value(s, i, value)) return false;
    out[key] = value;
    skip_ws(s, i);
    if (i < s.size() && s[i] == ',') {
      ++i;
      continue;
    }
    if (i < s.size() && s[i] == '}') {
      ++i;
      return true;
    }
    return false;
  }
}

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string render_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[64];
  // Shortest round-trippable form is overkill for perf metrics; %.6g keeps
  // the file diff-friendly.
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace

PerfJson::PerfJson(std::string path, std::string section)
    : path_(std::move(path)), section_(std::move(section)) {}

void PerfJson::set(const std::string& key, double value) {
  values_[key] = render_number(value);
}

void PerfJson::set(const std::string& key, const std::string& value) {
  values_[key] = quote(value);
}

std::map<std::string, std::map<std::string, std::string>> PerfJson::load(
    const std::string& path) {
  std::map<std::string, std::map<std::string, std::string>> sections;
  std::ifstream in(path);
  if (!in) return sections;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  std::size_t i = 0;
  skip_ws(text, i);
  if (i >= text.size() || text[i] != '{') return {};
  ++i;
  skip_ws(text, i);
  if (i < text.size() && text[i] == '}') return sections;
  for (;;) {
    skip_ws(text, i);
    std::string name;
    if (!parse_string(text, i, name)) return {};
    skip_ws(text, i);
    if (i >= text.size() || text[i] != ':') return {};
    ++i;
    std::map<std::string, std::string> section;
    if (!parse_flat_object(text, i, section)) return {};
    sections[name] = std::move(section);
    skip_ws(text, i);
    if (i < text.size() && text[i] == ',') {
      ++i;
      continue;
    }
    if (i < text.size() && text[i] == '}') return sections;
    return {};
  }
}

bool PerfJson::save() const {
  auto sections = load(path_);
  sections[section_] = values_;

  std::ofstream out(path_, std::ios::trunc);
  if (!out) return false;
  out << "{\n";
  bool first_section = true;
  for (const auto& [name, metrics] : sections) {
    if (!first_section) out << ",\n";
    first_section = false;
    out << "  " << quote(name) << ": {";
    bool first_key = true;
    for (const auto& [key, value] : metrics) {
      if (!first_key) out << ",";
      first_key = false;
      out << "\n    " << quote(key) << ": " << value;
    }
    if (!metrics.empty()) out << "\n  ";
    out << "}";
  }
  out << "\n}\n";
  return static_cast<bool>(out);
}

}  // namespace srm::util
