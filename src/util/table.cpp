#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace srm::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(std::size_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c])) << row[c];
      os << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c], '-') << (c + 1 == headers_.size() ? "\n" : "  ");
  }
  for (const auto& row : rows_) emit(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace srm::util
