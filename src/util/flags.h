// Minimal command-line flag parsing for benches and examples.
// Supports "--name=value" and "--name value"; unknown flags are an error so
// typos in sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace srm::util {

class Flags {
 public:
  // Parses argv; throws std::invalid_argument on malformed input.
  Flags(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& default_value) const;
  std::int64_t get_int(const std::string& name,
                       std::int64_t default_value) const;
  double get_double(const std::string& name, double default_value) const;
  bool get_bool(const std::string& name, bool default_value) const;
  std::uint64_t get_seed(std::uint64_t default_value) const;

  // Positional (non-flag) arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace srm::util
