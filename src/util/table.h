// Plain-text table formatting for benchmark output.  Each figure bench emits
// the series the paper plots as an aligned column table so the shape of the
// result can be compared against the paper directly from a terminal.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace srm::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds a row; the number of cells must equal the number of headers.
  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 3);
  static std::string num(std::size_t v);

  // Renders with column alignment; includes a header underline.
  void print(std::ostream& os) const;
  std::string to_string() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// A named section banner, e.g. "== Figure 3: random trees ==".
void print_banner(std::ostream& os, const std::string& title);

}  // namespace srm::util
