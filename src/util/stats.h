// Small statistics helpers used by the experiment harness and the SRM
// adaptive algorithms: running moments, sample quartiles (the paper reports
// medians and upper/lower quartiles across 20 trials), and the exponential
// weighted moving average used by the adaptive timer algorithm (Sec. VII-A).
#pragma once

#include <cstddef>
#include <vector>

namespace srm::util {

// Accumulates count/mean/variance/min/max without storing samples
// (Welford's online algorithm).
class RunningStats {
 public:
  void add(double x);
  void clear();

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const;       // 0 when empty
  double variance() const;   // sample variance; 0 when n < 2
  double stddev() const;
  double min() const;        // +inf when empty
  double max() const;        // -inf when empty

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_;
  double max_;
};

// Stores samples and answers order statistics.  Used to produce the
// median / quartile lines of the paper's figures.
class Samples {
 public:
  void add(double x);
  void clear();

  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double mean() const;

  // Linear-interpolated quantile, q in [0, 1].  Requires non-empty.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  double lower_quartile() const { return quantile(0.25); }
  double upper_quartile() const { return quantile(0.75); }
  double min() const { return quantile(0.0); }
  double max() const { return quantile(1.0); }

  // Samples in insertion order (quantile queries do not reorder them).
  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;                // insertion order
  mutable std::vector<double> sorted_cache_;  // rebuilt lazily for quantiles
  mutable bool cache_valid_ = true;
  const std::vector<double>& sorted() const;
};

// Exponential weighted moving average:
//   avg <- (1 - alpha) * avg + alpha * sample.
// The paper uses alpha = 1/4 for ave_dup_req / ave_req_delay (Sec. VII-A
// uses 1/4 in the text's formula with weight 3/4 on history).
class Ewma {
 public:
  explicit Ewma(double alpha, double initial = 0.0);

  void update(double sample);
  void reset(double value);

  double value() const { return value_; }
  double alpha() const { return alpha_; }
  bool seeded() const { return seeded_; }

 private:
  double alpha_;
  double value_;
  bool seeded_ = false;
};

// Five-number summary of a sample set, convenient for table rows.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double median = 0.0;
  double q1 = 0.0;
  double q3 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

Summary summarize(const Samples& s);

}  // namespace srm::util
