// Machine-readable performance trajectory output.
//
// Kernel benches record their headline numbers (ns/event, events/s,
// deliveries/s, wall-clock per sweep) into one shared JSON file —
// BENCH_kernel.json by convention — so successive PRs can diff kernel
// performance mechanically instead of eyeballing bench logs.
//
// The file is a two-level JSON object: top-level keys are sections (one per
// bench binary), each mapping metric names to numbers or strings:
//
//   {
//     "fig3_random_trees": {"threads": 4, "wall_seconds": 1.25, ...},
//     "micro_kernel": {"event_queue_ns_per_event": 231.4, ...}
//   }
//
// A writer owns one section: save() re-reads the file and rewrites it with
// only that section replaced, so independent benches compose.  Parsing is
// restricted to this two-level shape; an unreadable file is treated as
// empty rather than an error (perf records must never fail a bench run).
#pragma once

#include <map>
#include <string>

namespace srm::util {

class PerfJson {
 public:
  // `path` is the JSON file; `section` is the top-level key this writer
  // owns (conventionally the bench binary's name).
  PerfJson(std::string path, std::string section);

  void set(const std::string& key, double value);
  void set(const std::string& key, const std::string& value);

  // True while no metric has been set; lets callers skip save() instead of
  // replacing their section with an empty object (e.g. a filtered bench run
  // that captured none of its headline numbers).
  bool empty() const { return values_.empty(); }

  // Merges this writer's section into the file (other sections preserved,
  // keys emitted in sorted order).  Returns false if the file could not be
  // written.
  bool save() const;

  // Parses a two-level metrics file into section -> key -> raw JSON value
  // text.  Returns an empty map on any parse error.  Exposed for tests and
  // for tools that compare metrics across runs.
  static std::map<std::string, std::map<std::string, std::string>> load(
      const std::string& path);

 private:
  std::string path_;
  std::string section_;
  std::map<std::string, std::string> values_;  // key -> rendered JSON value
};

}  // namespace srm::util
