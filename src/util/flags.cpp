#include "util/flags.h"

#include <stdexcept>

namespace srm::util {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare boolean flag
    }
  }
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& default_value) const {
  const auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return std::stoll(it->second);
}

double Flags::get_double(const std::string& name, double default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return std::stod(it->second);
}

bool Flags::get_bool(const std::string& name, bool default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::uint64_t Flags::get_seed(std::uint64_t default_value) const {
  const auto it = values_.find("seed");
  if (it == values_.end()) return default_value;
  return std::stoull(it->second);
}

}  // namespace srm::util
