// Figure 8: delay/duplicates tradeoff for a *sparse* session in a large
// tree as a function of C2.  Members scattered through a 1000-node tree
// lack the distance diversity that drives deterministic suppression, so
// small C2 produces many duplicate requests; increasing C2 trades delay
// for fewer duplicates — the scenario that motivates adaptive timers.
#include "common.h"

int main(int argc, char** argv) {
  using namespace srm;
  const util::Flags flags(argc, argv);
  const std::uint64_t seed = flags.get_seed(42);
  const int trials = static_cast<int>(flags.get_int("trials", 20));
  const std::size_t nodes =
      static_cast<std::size_t>(flags.get_int("nodes", 1000));
  const std::size_t g = static_cast<std::size_t>(flags.get_int("members", 50));

  bench::print_header(
      "Figure 8: sparse session in a degree-4 tree (1000 nodes), f(C2)", seed,
      "G=" + std::to_string(g) + " random members; C1=2; failed edge at "
          "hops {1,2,3,4} from the source; " +
          std::to_string(trials) + " trials per point");

  util::Rng rng(seed);
  util::Table table({"C2", "hops", "requests mean", "delay/RTT mean"});

  for (int hops : {1, 2, 3, 4}) {
    for (int c2 = 0; c2 <= 100; c2 += (c2 < 10 ? 1 : 10)) {
      util::Samples req_count, req_delay;
      int done = 0;
      while (done < trials) {
        bench::TrialSpec spec;
        spec.topo = topo::make_bounded_degree_tree(nodes, 4);
        spec.members = harness::choose_members(nodes, g, rng);
        spec.source = spec.members[rng.index(g)];
        net::Routing routing(spec.topo);
        try {
          spec.congested = bench::link_at_hops(routing, spec.source,
                                               spec.members, hops, rng);
        } catch (const std::runtime_error&) {
          continue;  // this membership has no tree link at that depth
        }
        spec.config = bench::paper_sim_config(TimerParams{
            2.0, static_cast<double>(c2),
            std::log10(static_cast<double>(g)),
            std::log10(static_cast<double>(g))});
        spec.seed = rng.next_u64();
        const auto r = bench::run_trial(std::move(spec));
        req_count.add(static_cast<double>(r.requests));
        if (r.closest_request_delay_valid) {
          req_delay.add(r.closest_request_delay_rtt);
        }
        ++done;
      }
      table.add_row({util::Table::num(static_cast<std::size_t>(c2)),
                     util::Table::num(static_cast<std::size_t>(hops)),
                     util::Table::num(req_count.mean(), 2),
                     util::Table::num(req_delay.mean(), 3)});
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper check: small C2 gives unacceptably many duplicate "
               "requests for sparse\nsessions; increasing C2 trades moderate "
               "delay for far fewer duplicates.\n";
  return 0;
}
