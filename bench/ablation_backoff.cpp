// Ablation: request-timer backoff multiplier (Sec. VII-A) and the
// ignore-backoff heuristic (footnote 1).
//
// The paper: "With a multiplicative factor of 2, and with an adaptive
// algorithm with small minimum values for C1, a single node that
// experiences a packet loss could have its backed-off request timer expire
// before receiving the repair packet, resulting in an unnecessary duplicate
// request."  The scenario: a lone loss on a leaf link with small C1, where
// the repair takes request + repair-timer + return ~ 3 hops.
#include "common.h"

int main(int argc, char** argv) {
  using namespace srm;
  const util::Flags flags(argc, argv);
  const std::uint64_t seed = flags.get_seed(42);
  const int trials = static_cast<int>(flags.get_int("trials", 200));

  bench::print_header("Ablation: backoff multiplier and ignore-backoff",
                      seed, std::to_string(trials) + " trials per cell");
  util::Rng rng(seed);

  // Lone loss CLOSE to the source: a star where the source is one leaf and
  // the drop is on another leaf's link, so only that leaf misses the packet
  // and its distance to the source (d_S = 2) is small.  The repair costs
  // 2 (request travel) + D-timer + 2 (repair travel); the backed-off
  // request timer waits b*[C1*d_S, (C1+C2)*d_S].  With the adaptive floor
  // C1 = 0.5, x2 re-fires before the repair lands; x3 leaves headroom.
  auto run_cell = [&](double backoff, bool ignore_heuristic, double c1,
                      double d2) {
    util::Samples req;
    for (int t = 0; t < trials; ++t) {
      auto star = topo::make_star(6);
      SrmConfig cfg;
      cfg.timers = TimerParams{c1, 1.0, 1.0, d2};
      cfg.backoff_factor = backoff;
      cfg.ignore_backoff_heuristic = ignore_heuristic;
      harness::SimSession session(star.topo, star.leaves,
                                  {cfg, rng.next_u64(), 1});
      harness::RoundSpec round;
      round.source_node = star.leaves[0];
      round.congested = harness::DirectedLink{star.center, star.leaves[1]};
      round.page = PageId{static_cast<SourceId>(star.leaves[0]), 0};
      req.add(static_cast<double>(
          harness::run_loss_round(session, round, 0).requests));
    }
    return req.mean();
  };

  util::Table table({"C1", "D2", "backoff x2 requests",
                     "backoff x3 requests"});
  for (const auto& [c1, d2] : std::vector<std::pair<double, double>>{
           {0.5, 2.0}, {0.5, 4.0}, {1.0, 2.0}, {2.0, 2.0}}) {
    table.add_row({util::Table::num(c1, 1), util::Table::num(d2, 1),
                   util::Table::num(run_cell(2.0, true, c1, d2), 2),
                   util::Table::num(run_cell(3.0, true, c1, d2), 2)});
  }
  std::cout << "backoff multiplier (lone loss, repair needs ~3 hops):\n";
  table.print(std::cout);
  std::cout << "\nPaper check: with x2 and small C1 the lone loser re-fires "
               "before the repair\narrives (requests > 1); x3 leaves room "
               "and keeps requests at ~1.\n\n";

  // Ignore-backoff heuristic: a shared loss where several same-distance
  // members request simultaneously; without the heuristic each duplicate
  // request triggers another backoff, inflating recovery delay.
  auto run_delay = [&](bool ignore_heuristic) {
    util::Samples delay;
    for (int t = 0; t < trials; ++t) {
      auto star = topo::make_star(30);
      SrmConfig cfg;
      cfg.timers = TimerParams{0.0, 2.0, 0.0, 10.0};
      cfg.ignore_backoff_heuristic = ignore_heuristic;
      bench::TrialSpec spec;
      spec.source = star.leaves[0];
      spec.congested = harness::DirectedLink{star.leaves[0], star.center};
      spec.members = star.leaves;
      spec.topo = std::move(star.topo);
      spec.config = cfg;
      spec.seed = rng.next_u64();
      delay.add(bench::run_trial(std::move(spec)).max_delay_seconds);
    }
    return delay.mean();
  };
  util::Table t2({"ignore-backoff", "last-member delay (s)"});
  t2.add_row({"on", util::Table::num(run_delay(true), 2)});
  t2.add_row({"off", util::Table::num(run_delay(false), 2)});
  std::cout << "ignore-backoff heuristic (star, small C2, bursty duplicate "
               "requests):\n";
  t2.print(std::cout);
  std::cout << "\nPaper check: without the heuristic, same-iteration "
               "duplicates cascade the\nbackoff and delay recovery.\n";
  return 0;
}
