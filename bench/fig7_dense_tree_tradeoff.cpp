// Figure 7: delay/duplicates tradeoff for *dense* sessions in tree
// topologies as a function of C2, with the failed edge 1..4 hops from the
// source.  Dense = every node is a member (density 1).  The paper's shape:
// a small C2 already gives good performance on both axes; duplicates are
// minimized at C2 ~ 0 or large C2 and peak at an intermediate value, and
// the failed edge closest to the source is the worst case.
#include "common.h"

int main(int argc, char** argv) {
  using namespace srm;
  const util::Flags flags(argc, argv);
  const std::uint64_t seed = flags.get_seed(42);
  const int trials = static_cast<int>(flags.get_int("trials", 20));
  const std::size_t n = static_cast<std::size_t>(flags.get_int("nodes", 100));

  bench::print_header(
      "Figure 7: dense sessions (density 1) in a degree-4 tree, f(C2)", seed,
      "tree of " + std::to_string(n) + " nodes, all members; C1=2; "
          "failed edge at hops {1,2,3,4}; " +
          std::to_string(trials) + " trials per point");

  util::Rng rng(seed);
  util::Table table({"C2", "hops", "requests mean", "delay/RTT mean"});

  std::vector<net::NodeId> members(n);
  for (std::size_t i = 0; i < n; ++i) members[i] = static_cast<net::NodeId>(i);

  for (int hops : {1, 2, 3, 4}) {
    for (int c2 = 0; c2 <= 100; c2 += (c2 < 10 ? 1 : 10)) {
      util::Samples req_count, req_delay;
      for (int t = 0; t < trials; ++t) {
        bench::TrialSpec spec;
        spec.topo = topo::make_bounded_degree_tree(n, 4);
        spec.members = members;
        spec.source = 0;  // the root: every depth 1..4 has tree links
        net::Routing routing(spec.topo);
        spec.congested =
            bench::link_at_hops(routing, spec.source, members, hops, rng);
        spec.config = bench::paper_sim_config(TimerParams{
            2.0, static_cast<double>(c2),
            std::log10(static_cast<double>(n)),
            std::log10(static_cast<double>(n))});
        spec.seed = rng.next_u64();
        const auto r = bench::run_trial(std::move(spec));
        req_count.add(static_cast<double>(r.requests));
        if (r.closest_request_delay_valid) {
          req_delay.add(r.closest_request_delay_rtt);
        }
      }
      table.add_row({util::Table::num(static_cast<std::size_t>(c2)),
                     util::Table::num(static_cast<std::size_t>(hops)),
                     util::Table::num(req_count.mean(), 2),
                     util::Table::num(req_delay.mean(), 3)});
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper check: small C2 gives good delay and duplicates for "
               "dense sessions;\nthe failed edge closest to the source is "
               "the worst case for duplicates;\nduplicates peak at an "
               "intermediate C2.\n";
  return 0;
}
