// Section IV-A: deterministic loss recovery on a chain.  With C1 = D1 = 1
// and C2 = D2 = 0, timers are a pure function of distance, so a single
// request (from the node just below the failure) and a single repair (from
// the node just above it) recover every loss, and the measured event times
// reproduce the paper's algebra:
//   node A (right of the failed link, detects at time t):
//     request sent at        t + d(A, source)
//     repair sent by B at    t + d(A, S) + 1 + 2    (D1 * d(B,A)=1... B at
//                                                    distance 1, detect +1)
//   and the farthest node receives the repair sooner than it could via
//   unicast communication with the original source.
#include "common.h"

#include "net/drop_policy.h"
#include "srm/messages.h"

int main(int argc, char** argv) {
  using namespace srm;
  const util::Flags flags(argc, argv);
  const std::uint64_t seed = flags.get_seed(42);
  const std::size_t n = static_cast<std::size_t>(flags.get_int("nodes", 12));

  bench::print_header("Section IV-A: chain, deterministic suppression", seed,
                      "chain of " + std::to_string(n) +
                          " members, C1=D1=1, C2=D2=0; drop swept over every "
                          "link; all timings deterministic");

  util::Table table({"failed link", "requests", "repairs", "requestor",
                     "responder", "last delay (s)", "last delay/RTT",
                     "unicast bound/RTT"});

  std::vector<net::NodeId> members(n);
  for (std::size_t i = 0; i < n; ++i) members[i] = static_cast<net::NodeId>(i);

  for (std::size_t drop = 1; drop + 1 < n; ++drop) {
    SrmConfig cfg;
    cfg.timers = TimerParams{1.0, 0.0, 1.0, 0.0};
    harness::SimSession session(topo::make_chain(n), members, {cfg, seed, 1});
    harness::RoundSpec round;
    round.source_node = 0;
    round.congested = harness::DirectedLink{static_cast<net::NodeId>(drop),
                                            static_cast<net::NodeId>(drop + 1)};
    round.page = PageId{0, 0};
    const auto r = harness::run_loss_round(session, round, 0);

    net::NodeId requestor = net::kInvalidNode, responder = net::kInvalidNode;
    for (net::NodeId v = 0; v < n; ++v) {
      if (session.agent_at(v).metrics().requests_sent > 0) requestor = v;
      if (session.agent_at(v).metrics().repairs_sent > 0) responder = v;
    }
    table.add_row(
        {"(" + std::to_string(drop) + "," + std::to_string(drop + 1) + ")",
         util::Table::num(r.requests), util::Table::num(r.repairs),
         std::to_string(requestor), std::to_string(responder),
         util::Table::num(r.max_delay_seconds, 1),
         util::Table::num(r.last_member_delay_rtt, 3),
         util::Table::num(2.0, 1)});
  }
  table.print(std::cout);
  std::cout << "\nPaper check: exactly 1 request (node just below the failed "
               "link) and 1 repair\n(node just above) for every drop "
               "position; the farthest node's delay in its\nown RTT units "
               "stays below the ~2 RTT a unicast retransmit scheme needs.\n";
  return 0;
}
