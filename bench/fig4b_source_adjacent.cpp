// Figure 4 companion ([12]): the same sparse-session scenarios with the
// congested link always ADJACENT TO THE SOURCE.  "In simulations shown in
// [12] where the congested link is always adjacent to the source, the
// number of repairs is low but the average number of requests is high" —
// every member shares the loss, so repairs come from the lone good member
// (the source) while the many equidistant losers generate duplicate
// requests.
#include "common.h"

int main(int argc, char** argv) {
  using namespace srm;
  const util::Flags flags(argc, argv);
  const std::uint64_t seed = flags.get_seed(42);
  const int trials = static_cast<int>(flags.get_int("trials", 20));
  const std::size_t nodes =
      static_cast<std::size_t>(flags.get_int("nodes", 1000));

  bench::print_header(
      "Figure 4 companion: congested link adjacent to the source", seed,
      "tree 1000/deg4, sparse sessions, fixed timers; " +
          std::to_string(trials) + " trials per size");

  util::Rng rng(seed);
  util::Table table({"G", "requests med [q1,q3]", "repairs med [q1,q3]",
                     "requests mean", "repairs mean"});

  for (std::size_t g = 10; g <= 100; g += 10) {
    bench::PanelStats stats;
    for (int t = 0; t < trials; ++t) {
      bench::TrialSpec spec;
      spec.topo = topo::make_bounded_degree_tree(nodes, 4);
      spec.members = harness::choose_members(nodes, g, rng);
      spec.source = spec.members[rng.index(g)];
      net::Routing routing(spec.topo);
      spec.congested = harness::link_adjacent_to_source(routing, spec.source,
                                                        spec.members);
      spec.config = bench::paper_sim_config(paper_fixed_params(g));
      spec.seed = rng.next_u64();
      stats.add(bench::run_trial(std::move(spec)));
    }
    table.add_row({util::Table::num(g),
                   bench::quartile_cell(stats.requests),
                   bench::quartile_cell(stats.repairs),
                   util::Table::num(stats.requests.mean(), 2),
                   util::Table::num(stats.repairs.mean(), 2)});
  }
  table.print(std::cout);
  std::cout << "\nPaper check ([12]): compared with fig4's random link, the "
               "roles flip —\nrequests are high (many members share the "
               "loss, with little distance\ndiversity) while repairs stay "
               "low (only the source side can answer).\n";
  return 0;
}
