// SRM vs sender-based unicast-NACK reliable multicast (the Sec. II-A
// strawman and the La Porta/Schwartz comparison discussed in Sec. VI).
//
// For a shared loss adjacent to the source, the sender-based scheme costs
// G-1 NACKs converging on the source (the implosion) plus, with unicast
// repairs, G-1 retransmissions over the links near the source; SRM costs a
// handful of multicast requests and one repair.  For an isolated loss far
// from the source, unicast NACK needs a full round trip to the source while
// SRM repairs from a neighbor.
#include <memory>

#include "common.h"
#include "srm/baseline.h"

namespace {

using namespace srm;

struct BaselineResult {
  std::uint64_t control_at_source = 0;  // NACKs received by the source
  std::uint64_t repairs = 0;
  std::uint64_t link_transmissions = 0;
  double mean_recovery_rtt = 0.0;
};

BaselineResult run_baseline(net::Topology topo,
                            const std::vector<net::NodeId>& members,
                            net::NodeId source_node,
                            harness::DirectedLink congested,
                            baseline::RepairMode mode, std::uint64_t seed) {
  sim::EventQueue queue;
  net::MulticastNetwork network(queue, topo);
  MemberDirectory directory;
  util::Rng rng(seed);
  baseline::NackConfig cfg;
  cfg.repair_mode = mode;

  std::vector<std::unique_ptr<baseline::NackAgent>> agents;
  baseline::NackAgent* source = nullptr;
  for (net::NodeId n : members) {
    agents.push_back(std::make_unique<baseline::NackAgent>(
        network, directory, n, static_cast<SourceId>(n), 1, cfg, rng.fork()));
    agents.back()->start();
    if (n == source_node) source = agents.back().get();
  }

  auto drop = std::make_shared<net::ScriptedLinkDrop>(
      congested.from, congested.to, [](const net::Packet& p) {
        const auto* d = dynamic_cast<const DataMessage*>(p.payload.get());
        return d != nullptr && d->name().seq == 0;
      });
  network.set_drop_policy(drop);

  const PageId page{static_cast<SourceId>(source_node), 0};
  source->send_data(page, {1});
  queue.schedule_after(1.0, [&] { source->send_data(page, {2}); });
  queue.run();

  BaselineResult out;
  out.control_at_source = source->stats().nacks_received;
  out.repairs = source->stats().retransmissions;
  out.link_transmissions = network.stats().link_transmissions;
  util::Samples delays;
  for (const auto& a : agents) {
    for (double d : a->stats().recovery_delay_rtt.values()) delays.add(d);
  }
  out.mean_recovery_rtt = delays.empty() ? 0.0 : delays.mean();
  return out;
}

struct SrmResult {
  std::uint64_t requests = 0;
  std::uint64_t repairs = 0;
  std::uint64_t link_transmissions = 0;
  double last_member_rtt = 0.0;
};

SrmResult run_srm(net::Topology topo, const std::vector<net::NodeId>& members,
                  net::NodeId source_node, harness::DirectedLink congested,
                  const TimerParams& timers, std::uint64_t seed) {
  bench::TrialSpec spec;
  spec.topo = std::move(topo);
  spec.members = members;
  spec.source = source_node;
  spec.congested = congested;
  spec.config = bench::paper_sim_config(timers);
  spec.seed = seed;
  const auto r = bench::run_trial(std::move(spec));
  return SrmResult{r.requests, r.repairs, r.link_transmissions,
                   r.last_member_delay_rtt};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace srm;
  const util::Flags flags(argc, argv);
  const std::uint64_t seed = flags.get_seed(42);
  const int trials = static_cast<int>(flags.get_int("trials", 20));

  bench::print_header(
      "Baseline comparison: SRM vs sender-based unicast-NACK", seed,
      "one loss per trial; means over " + std::to_string(trials) +
          " trials; 'ctrl@src' counts NACKs arriving at the source");

  util::Rng rng(seed);
  util::Table table({"scenario", "scheme", "ctrl@src", "requests", "repairs",
                     "link tx", "delay/RTT"});

  // Scenario 1: star, shared loss adjacent to the source (worst case for
  // sender-based: every member NACKs).
  {
    util::RunningStats nack_ctrl, nack_rep, nack_links, nack_delay;
    util::RunningStats nackm_ctrl, nackm_rep, nackm_links, nackm_delay;
    util::RunningStats srm_req, srm_rep, srm_links, srm_delay;
    for (int t = 0; t < trials; ++t) {
      auto star = topo::make_star(100);
      const auto congested =
          harness::DirectedLink{star.leaves[0], star.center};
      const auto b =
          run_baseline(star.topo, star.leaves, star.leaves[0], congested,
                       baseline::RepairMode::kUnicastToNacker, seed + t);
      nack_ctrl.add(b.control_at_source);
      nack_rep.add(b.repairs);
      nack_links.add(b.link_transmissions);
      nack_delay.add(b.mean_recovery_rtt);
      const auto bm =
          run_baseline(star.topo, star.leaves, star.leaves[0], congested,
                       baseline::RepairMode::kMulticast, seed + t);
      nackm_ctrl.add(bm.control_at_source);
      nackm_rep.add(bm.repairs);
      nackm_links.add(bm.link_transmissions);
      nackm_delay.add(bm.mean_recovery_rtt);
      // SRM with the width a star session needs (Sec. IV-B: C2 ~ G keeps
      // the expected duplicate count ~1; the adaptive algorithm converges
      // to this region on its own, see fig13).
      // D2 stays small: only the source holds the data, so repair timers
      // need no spread.
      TimerParams tuned{2.0, 100.0, 1.0, 1.0};
      const auto s = run_srm(std::move(star.topo), star.leaves,
                             star.leaves[0], congested, tuned,
                             seed + 1000 + t);
      srm_req.add(s.requests);
      srm_rep.add(s.repairs);
      srm_links.add(s.link_transmissions);
      srm_delay.add(s.last_member_rtt);
    }
    auto row = [&](const std::string& scheme, const util::RunningStats& ctrl,
                   double req, const util::RunningStats& rep,
                   const util::RunningStats& links,
                   const util::RunningStats& delay) {
      table.add_row({"star G=100, shared loss", scheme,
                     util::Table::num(ctrl.mean(), 1),
                     util::Table::num(req, 1),
                     util::Table::num(rep.mean(), 1),
                     util::Table::num(links.mean(), 0),
                     util::Table::num(delay.mean(), 2)});
    };
    row("NACK+unicast rep", nack_ctrl, 0, nack_rep, nack_links, nack_delay);
    row("NACK+multicast rep", nackm_ctrl, 0, nackm_rep, nackm_links,
        nackm_delay);
    table.add_row({"star G=100, shared loss", "SRM", "0",
                   util::Table::num(srm_req.mean(), 1),
                   util::Table::num(srm_rep.mean(), 1),
                   util::Table::num(srm_links.mean(), 0),
                   util::Table::num(srm_delay.mean(), 2)});
  }

  // Scenario 2: long chain, isolated loss far from the source (SRM repairs
  // from a neighbor; unicast-NACK pays the full round trip).
  {
    util::RunningStats nack_delay, srm_delay, nack_links, srm_links;
    for (int t = 0; t < trials; ++t) {
      auto topo = topo::make_chain(50);
      std::vector<net::NodeId> members(50);
      for (std::size_t i = 0; i < 50; ++i) {
        members[i] = static_cast<net::NodeId>(i);
      }
      const auto congested = harness::DirectedLink{48, 49};
      const auto b = run_baseline(topo, members, 0, congested,
                                  baseline::RepairMode::kUnicastToNacker,
                                  seed + t);
      nack_delay.add(b.mean_recovery_rtt);
      nack_links.add(b.link_transmissions);
      // SRM with the chain's deterministic parameters (Sec. IV-A).
      const auto s = run_srm(std::move(topo), members, 0, congested,
                             TimerParams{1.0, 0.0, 1.0, 0.0},
                             seed + 1000 + t);
      srm_delay.add(s.last_member_rtt);
      srm_links.add(s.link_transmissions);
    }
    table.add_row({"chain 50, edge loss", "NACK+unicast rep", "1.0", "0.0",
                   "1.0", util::Table::num(nack_links.mean(), 0),
                   util::Table::num(nack_delay.mean(), 2)});
    table.add_row({"chain 50, edge loss", "SRM", "0", "1.0", "1.0",
                   util::Table::num(srm_links.mean(), 0),
                   util::Table::num(srm_delay.mean(), 2)});
  }

  table.print(std::cout);
  std::cout << "\nPaper check: the sender-based scheme implodes (ctrl@src ~ "
               "G-1) and with\nunicast repairs resends per receiver; SRM "
               "suppresses to a few multicast\nrequests + 1 repair, and "
               "repairs isolated edge losses locally (delay < 1 RTT\nvs >= "
               "1 RTT for source-based recovery).\n";
  return 0;
}
