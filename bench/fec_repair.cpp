// FEC repair benchmark: repair-traffic bytes with and without the coded
// repair layer (src/srm/fec; ARCHITECTURE.md §11) under a bursty loss
// plan, at EQUAL recovery-latency deadlines.
//
// Each trial builds a fresh random tree, arms a Gilbert-Elliott burst
// epoch (epoch markers only — the damage itself is scripted, so the two
// modes face byte-identical loss patterns), and runs loss rounds through
// it: one dropped ADU per quiet round, two consecutive dropped ADUs per
// burst round (the pattern a single XOR parity cannot repair).  Mode
// fec_off recovers everything with plain SRM request/repair; mode fec_on
// wraps every member in a FecSession, whose burst-floored GF(256) parity
// budget lets receivers reconstruct locally.  The send observer meters the
// control-plane bytes (REQUEST + REPAIR transmissions) and the parity
// overhead bytes; the RecoveryInvariantChecker folds the trace and
// enforces the same recovery deadline on both modes.
//
// Shape to match (Sec. VII-B's parity pointer): fec_on spends parity bytes
// to erase request/repair bytes — strictly fewer repair-traffic bytes at
// the same deadline, with recovery latency no worse.  The bench exits
// non-zero if fec_on's repair traffic is not below fec_off's, making it
// self-gating in CI on top of the check_bench.py latency gate.
#include <cstddef>

#include "common.h"
#include "fault/checker.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "srm/fec/session.h"
#include "trace/trace.h"

namespace srm::bench {
namespace {

struct FecTrialSpec {
  net::Topology topo;
  std::vector<net::NodeId> members;
  net::NodeId source = 0;
  harness::DirectedLink congested;
  SrmConfig config;
  std::uint64_t seed = 1;
  bool fec = false;
  int rounds = 8;
  double burst_start = 0.0;  // burst epoch window (virtual seconds)
  double burst_end = 0.0;
  double deadline = 120.0;
};

struct FecTrialResult {
  std::vector<double> latencies;     // seconds of virtual time
  std::uint64_t request_bytes = 0;   // REQUEST transmissions
  std::uint64_t repair_bytes = 0;    // REPAIR transmissions
  std::uint64_t parity_bytes = 0;    // parity ADU transmissions (fec only)
  std::uint64_t reconstructions = 0;
  std::size_t losses = 0;
  std::size_t unrecovered = 0;
  bool passed = true;
};

FecTrialResult run_fec_trial(const FecTrialSpec& spec) {
  harness::SimSession session(spec.topo, spec.members,
                              {spec.config, spec.seed, /*group=*/1});
  trace::VectorSink capture;
  trace::Tracer tracer;
  tracer.set_sink(&capture);
  tracer.set_mask(static_cast<std::uint32_t>(trace::Category::kSrm) |
                  static_cast<std::uint32_t>(trace::Category::kFault));
  session.set_tracer(&tracer);

  // Coded-repair wrappers, one per member (fec mode only).
  std::vector<std::unique_ptr<fec::FecSession>> sessions;
  fec::FecSession* tx = nullptr;
  if (spec.fec) {
    FecConfig fc;
    fc.enabled = true;
    fc.generation_size = 2;  // one generation per loss round
    for (net::NodeId n : session.member_nodes()) {
      sessions.push_back(
          std::make_unique<fec::FecSession>(session.agent_at(n), fc));
      if (n == spec.source) tx = sessions.back().get();
    }
  }

  // Burst epoch markers: zero loss probability, so the Gilbert-Elliott
  // policy drops nothing — the epochs only drive the parity budget, and
  // both modes see the identical scripted damage below.
  net::GilbertElliottDrop::Params ge;
  ge.loss_good = 0.0;
  ge.loss_bad = 0.0;
  fault::FaultPlan plan;
  plan.burst_on(spec.burst_start, ge);
  plan.burst_off(spec.burst_end);
  fault::FaultInjector injector(session.queue(), session.mutable_topology(),
                                session.network(), std::move(plan),
                                session.rng().fork());
  injector.set_tracer(&tracer);
  injector.set_epoch_observer(
      [&sessions](bool active, const net::GilbertElliottDrop::Params&) {
        for (auto& s : sessions) s->set_burst_epoch(active);
      });
  injector.arm();

  // Meter the control plane: REQUEST/REPAIR transmissions are the repair
  // traffic the code is meant to erase; parity ADUs are its cost.
  FecTrialResult result;
  session.network().set_send_observer(
      [&result](net::NodeId, const net::Packet& p) {
        if (dynamic_cast<const RequestMessage*>(p.payload.get()) != nullptr) {
          result.request_bytes += p.payload->size_bytes();
        } else if (dynamic_cast<const RepairMessage*>(p.payload.get()) !=
                   nullptr) {
          result.repair_bytes += p.payload->size_bytes();
        } else if (const auto* d =
                       dynamic_cast<const DataMessage*>(p.payload.get())) {
          const auto& body = *d->payload();
          if (!body.empty() && body[0] == fec::kFecParityTag) {
            result.parity_bytes += p.payload->size_bytes();
          }
        }
      });

  // The loss rounds.  Round r sends two application ADUs at t_r; the
  // congested link drops the first (quiet round) or both (burst round).
  // Seqs are read off the source's own stream at send time, so the fec
  // mode's parity ADUs (which consume sequence numbers) need no special
  // accounting.
  SrmAgent& source = session.agent_at(spec.source);
  const PageId page{static_cast<SourceId>(spec.source), 0};
  const StreamKey stream{source.id(), page};
  for (int r = 0; r < spec.rounds; ++r) {
    const double at = 10.0 + 40.0 * r;
    const bool burst = at >= spec.burst_start && at < spec.burst_end;
    session.queue().schedule_at(at, [&, r, burst] {
      const auto adv = source.advertised_max(stream);
      const SeqNo base = adv ? *adv + 1 : 0;
      std::vector<SeqNo> dropped{base};
      if (burst) dropped.push_back(base + 1);
      const std::size_t max_drops = dropped.size();
      session.network().set_drop_policy(
          std::make_shared<net::ScriptedLinkDrop>(
              spec.congested.from, spec.congested.to,
              [dropped = std::move(dropped)](const net::Packet& p) {
                const auto* d =
                    dynamic_cast<const DataMessage*>(p.payload.get());
                return d != nullptr &&
                       std::find(dropped.begin(), dropped.end(),
                                 d->name().seq) != dropped.end();
              },
              max_drops));
      const Payload first{static_cast<std::uint8_t>(r), 0xAB};
      const Payload second{static_cast<std::uint8_t>(r), 0xCD};
      if (tx != nullptr) {
        tx->send(page, first);
        tx->send(page, second);  // seals the round's generation
      } else {
        source.send_data(page, first);
        source.send_data(page, second);
      }
    });
  }
  session.run();
  session.network().set_send_observer(nullptr);

  for (std::size_t i = 0; i < session.member_count(); ++i) {
    result.reconstructions += session.agent(i).metrics().fec_reconstructions;
  }
  fault::CheckerOptions copts;
  copts.deadline = spec.deadline;
  const fault::CheckerReport report =
      fault::RecoveryInvariantChecker(copts).check(
          capture.events(), injector.disruption_windows(),
          session.queue().now());
  result.latencies = report.recovery_latencies;
  result.losses = report.losses;
  result.unrecovered = report.unrecovered.size();
  result.passed = report.passed;
  return result;
}

}  // namespace
}  // namespace srm::bench

int main(int argc, char** argv) {
  using namespace srm;
  const util::Flags flags(argc, argv);
  const std::uint64_t seed = flags.get_seed(1995);
  const int trials = static_cast<int>(flags.get_int("trials", 8));
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 60));
  const auto group = static_cast<std::size_t>(flags.get_int("members", 24));
  const int rounds = static_cast<int>(flags.get_int("rounds", 8));
  const harness::ReplicationRunner runner(bench::flag_threads(flags));
  const std::string json_path =
      flags.get_string("bench-json", "BENCH_fec.json");
  util::PerfJson json(json_path, "fec_repair");
  const auto start = std::chrono::steady_clock::now();

  bench::print_header(
      "FEC repair: repair traffic vs parity overhead under bursty loss",
      seed,
      "random tree N=" + std::to_string(nodes) + ", G=" +
          std::to_string(group) + "; " + std::to_string(rounds) +
          " loss rounds per trial, double losses during the burst epoch; " +
          std::to_string(trials) + " trials per mode; threads=" +
          std::to_string(runner.threads()));

  // Build the specs once, then run them in both modes: identical topology,
  // membership, congested link, seed and scripted damage per trial.
  util::Rng rng(seed);
  std::vector<bench::FecTrialSpec> base_specs;
  base_specs.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    bench::FecTrialSpec spec;
    spec.topo = topo::make_random_tree(nodes, rng);
    std::vector<net::NodeId> all(nodes);
    for (std::size_t i = 0; i < nodes; ++i) {
      all[i] = static_cast<net::NodeId>(i);
    }
    rng.shuffle(all);
    spec.members.assign(all.begin(), all.begin() + static_cast<long>(group));
    std::sort(spec.members.begin(), spec.members.end());
    spec.source = spec.members[rng.index(group)];
    net::Routing routing(spec.topo);
    spec.congested = harness::choose_congested_link(routing, spec.source,
                                                    spec.members, rng);
    spec.config = bench::paper_sim_config(paper_fixed_params(group));
    spec.rounds = rounds;
    // The burst epoch covers the middle half of the rounds (round r fires
    // at t = 10 + 40r).
    spec.burst_start = 10.0 + 40.0 * (rounds / 4) - 5.0;
    spec.burst_end = 10.0 + 40.0 * (3 * rounds / 4) - 5.0;
    spec.seed = rng.next_u64();
    base_specs.push_back(std::move(spec));
  }

  util::Table table({"mode", "losses", "unrecovered", "request B", "repair B",
                     "parity B", "reconstr", "latency p50 (s)", "p90 (s)",
                     "p99 (s)", "invariants"});
  struct ModeTotals {
    util::Samples latency;
    std::uint64_t request_bytes = 0, repair_bytes = 0, parity_bytes = 0;
    std::uint64_t reconstructions = 0;
    std::size_t losses = 0, unrecovered = 0;
    bool passed = true;
  };
  ModeTotals totals[2];
  std::size_t replications = 0;

  for (const bool fec : {false, true}) {
    std::vector<bench::FecTrialSpec> specs = base_specs;
    for (auto& s : specs) s.fec = fec;
    replications += specs.size();
    const auto results = runner.map<bench::FecTrialResult>(
        specs.size(),
        [&specs](std::size_t i) { return bench::run_fec_trial(specs[i]); });

    ModeTotals& m = totals[fec ? 1 : 0];
    for (const auto& r : results) {
      for (double s : r.latencies) m.latency.add(s);
      m.request_bytes += r.request_bytes;
      m.repair_bytes += r.repair_bytes;
      m.parity_bytes += r.parity_bytes;
      m.reconstructions += r.reconstructions;
      m.losses += r.losses;
      m.unrecovered += r.unrecovered;
      m.passed = m.passed && r.passed;
    }
    const double p50 = m.latency.empty() ? 0.0 : m.latency.quantile(0.5);
    const double p90 = m.latency.empty() ? 0.0 : m.latency.quantile(0.9);
    const double p99 = m.latency.empty() ? 0.0 : m.latency.quantile(0.99);
    table.add_row({fec ? "fec_on" : "fec_off", util::Table::num(m.losses),
                   util::Table::num(m.unrecovered),
                   util::Table::num(m.request_bytes),
                   util::Table::num(m.repair_bytes),
                   util::Table::num(m.parity_bytes),
                   util::Table::num(m.reconstructions),
                   util::Table::num(p50, 2), util::Table::num(p90, 2),
                   util::Table::num(p99, 2), m.passed ? "PASS" : "FAIL"});

    const std::string prefix = fec ? "fec_on_" : "fec_off_";
    json.set(prefix + "recovery_p50_us", p50 * 1e6);
    json.set(prefix + "recovery_p90_us", p90 * 1e6);
    json.set(prefix + "recovery_p99_us", p99 * 1e6);
    json.set(prefix + "request_bytes", static_cast<double>(m.request_bytes));
    json.set(prefix + "repair_bytes", static_cast<double>(m.repair_bytes));
    json.set(prefix + "repair_traffic_bytes",
             static_cast<double>(m.request_bytes + m.repair_bytes));
    json.set(prefix + "parity_bytes", static_cast<double>(m.parity_bytes));
    json.set(prefix + "losses", static_cast<double>(m.losses));
    json.set(prefix + "unrecovered", static_cast<double>(m.unrecovered));
    json.set(prefix + "reconstructions",
             static_cast<double>(m.reconstructions));
  }
  table.print(std::cout);

  const std::uint64_t off_traffic =
      totals[0].request_bytes + totals[0].repair_bytes;
  const std::uint64_t on_traffic =
      totals[1].request_bytes + totals[1].repair_bytes;
  std::cout << "\nPaper check: coded repair erases request/repair traffic\n"
               "(fec_off " << off_traffic << " B -> fec_on " << on_traffic
            << " B; parity overhead " << totals[1].parity_bytes
            << " B) at the same recovery deadline, with "
            << totals[1].reconstructions << " local reconstructions.\n";

  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;
  if (!json_path.empty()) {
    json.set("threads", static_cast<double>(runner.threads()));
    json.set("replications", static_cast<double>(replications));
    json.set("rounds", static_cast<double>(rounds));
    json.set("wall_seconds", wall.count());
    json.save();
    std::cout << "[perf] " << json_path << " updated (fec_repair)\n";
  }

  const bool gate = totals[0].passed && totals[1].passed &&
                    on_traffic < off_traffic &&
                    totals[1].unrecovered == 0;
  if (!gate) {
    std::cout << "\nFAIL: fec_on repair traffic (" << on_traffic
              << " B) must be below fec_off (" << off_traffic
              << " B) with invariants passing on both modes.\n";
  }
  return gate ? 0 : 1;
}
