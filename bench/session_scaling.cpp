// Session-message scaling: the vat-style rate adaptation of Sec. III-A and
// the hierarchical representatives of Sec. IX-A.
//
// Panel 1 (flat sessions): the mean reporting interval grows linearly with
// the group size, so the aggregate session bandwidth stays a fixed fraction
// of the data bandwidth no matter how many members there are.
//
// Panel 2 (hierarchy): on a tree of LANs, electing one representative per
// LAN cuts the session packets crossing the backbone by ~the LAN size,
// while every member still learns its distance to its representative.
//
// Panel 3 (large-group session rounds): the simulator-kernel cost of the
// O(G^2) session-message path itself.  Every member multicasts one session
// report per round (G sends, G*(G-1) deliveries, every receiver folding in
// the sender's state report and its echo table); wall-clock throughput at
// G in {50, 200, 500} is recorded into BENCH_session.json so the large-
// session fast path can be tracked across PRs (see EXPERIMENTS.md).
#include <chrono>
#include <memory>

#include "common.h"
#include "srm/session_hierarchy.h"

int main(int argc, char** argv) {
  using namespace srm;
  const util::Flags flags(argc, argv);
  const std::uint64_t seed = flags.get_seed(42);
  const int rounds = static_cast<int>(flags.get_int("rounds", 5));
  const std::string json_path =
      flags.get_string("bench-json", "BENCH_session.json");

  bench::print_header("Session-message scaling (Sec. III-A, IX-A)", seed, "");

  {
    std::cout << "flat reporting: interval scales with G, aggregate "
                 "bandwidth constant\n";
    SessionConfig cfg;
    cfg.bandwidth_fraction = 0.05;
    cfg.data_bandwidth_bytes = 8000.0;
    cfg.min_interval = 0.0;
    SessionScheduler sched(cfg, util::Rng(seed));
    util::Table t({"G", "mean interval (s)", "per-member B/s",
                   "aggregate B/s", "budget B/s"});
    for (std::size_t g : {10u, 100u, 1000u, 10000u}) {
      const double iv = sched.mean_interval(g, 100);
      const double per = 100.0 / iv;
      t.add_row({util::Table::num(g), util::Table::num(iv, 2),
                 util::Table::num(per, 2),
                 util::Table::num(per * static_cast<double>(g), 1),
                 util::Table::num(0.05 * 8000.0, 1)});
    }
    t.print(std::cout);
  }

  {
    std::cout << "\nhierarchical representatives on a tree of LANs "
                 "(session packets crossing the backbone, 500 s)\n";
    util::Table t({"LANs x hosts", "members", "flat backbone rx",
                   "hier backbone rx", "reduction"});
    for (const auto& [lans, hosts] : std::vector<std::pair<int, int>>{
             {5, 5}, {10, 5}, {10, 10}}) {
      auto run = [&](bool hierarchical) -> std::uint64_t {
        auto tl = topo::make_tree_of_lans(lans, 3, hosts);
        harness::SimSession session(std::move(tl.topo), tl.workstations,
                                    {SrmConfig{}, seed, 1});
        std::uint64_t backbone_rx = 0;
        session.network().set_delivery_observer(
            [&](const net::Packet& p, const net::DeliveryInfo& info) {
              if (dynamic_cast<const SessionMessage*>(p.payload.get()) &&
                  info.hops > 2) {
                ++backbone_rx;
              }
            });
        util::Rng rng(seed ^ 0xBEEF);
        HierarchyConfig hcfg;
        hcfg.local_ttl = 2;
        hcfg.report_interval = 10.0;
        std::vector<std::unique_ptr<SessionHierarchy>> hier;
        if (hierarchical) {
          session.for_each_agent([&](SrmAgent& a) {
            hier.push_back(
                std::make_unique<SessionHierarchy>(a, hcfg, rng.fork()));
            hier.back()->start();
          });
          session.queue().run_until(500.0);
        } else {
          for (int round = 0; round < 50; ++round) {
            session.for_each_agent([&](SrmAgent& a) {
              session.queue().schedule_after(
                  10.0 * round + rng.uniform(0.0, 10.0),
                  [&a] { a.send_session_message(); });
            });
          }
          session.queue().run_until(500.0);
        }
        return backbone_rx;
      };
      const auto flat = run(false);
      const auto hier = run(true);
      t.add_row({std::to_string(lans) + " x " + std::to_string(hosts),
                 util::Table::num(std::size_t(lans * hosts)),
                 util::Table::num(flat), util::Table::num(hier),
                 util::Table::num(static_cast<double>(flat) /
                                      std::max<std::uint64_t>(1, hier),
                                  1) +
                     "x"});
    }
    t.print(std::cout);
    std::cout << "\nExpected: the hierarchy's backbone session traffic is "
                 "cut by roughly the\nLAN size (only one representative per "
                 "LAN reports globally).\n";
  }

  {
    std::cout << "\nlarge-group session rounds: every member reports once "
                 "per round\n(G sends, G*(G-1) deliveries; estimated "
                 "distances, echoes for every peer)\n";
    util::PerfJson json(json_path, "session_scaling");
    util::Table t({"G", "nodes", "rounds", "wall (s)", "session msgs/s",
                   "deliveries/s"});
    for (std::size_t g : {std::size_t{50}, std::size_t{200},
                          std::size_t{500}}) {
      const std::size_t nodes = 2 * g;
      util::Rng rng(seed + g);
      auto members = harness::choose_members(nodes, g, rng);
      SrmConfig cfg;
      cfg.distance_mode = DistanceMode::kEstimated;
      cfg.session.enabled = false;  // rounds are driven explicitly below
      harness::SimSession session(topo::make_bounded_degree_tree(nodes, 4),
                                  members, {cfg, seed, 1});
      auto run_round = [&](double base) {
        for (std::size_t i = 0; i < session.member_count(); ++i) {
          SrmAgent& a = session.agent(i);
          session.queue().schedule_at(
              base + static_cast<double>(i) / static_cast<double>(g),
              [&a] { a.send_session_message(); });
        }
        session.queue().run();
      };
      // Warm-up round: populates every estimator's peer table so measured
      // rounds carry full-size echo tables (the steady state).
      run_round(0.0);

      const auto start = std::chrono::steady_clock::now();
      for (int r = 0; r < rounds; ++r) {
        run_round(100.0 * static_cast<double>(r + 1));
      }
      const std::chrono::duration<double> wall =
          std::chrono::steady_clock::now() - start;

      const double msgs = static_cast<double>(g) * rounds;
      const double deliveries = msgs * static_cast<double>(g - 1);
      t.add_row({util::Table::num(g), util::Table::num(nodes),
                 util::Table::num(static_cast<std::size_t>(rounds)),
                 util::Table::num(wall.count(), 3),
                 util::Table::num(msgs / wall.count(), 0),
                 util::Table::num(deliveries / wall.count(), 0)});
      if (!json_path.empty()) {
        const std::string p = "g" + std::to_string(g) + "_";
        json.set(p + "wall_seconds", wall.count());
        json.set(p + "messages_per_second", msgs / wall.count());
        json.set(p + "deliveries_per_second", deliveries / wall.count());
      }
    }
    t.print(std::cout);
    if (!json_path.empty()) {
      json.set("rounds", static_cast<double>(rounds));
      json.save();
      std::cout << "\n[perf] " << json_path << " updated (session_scaling)\n";
    }
  }
  return 0;
}
