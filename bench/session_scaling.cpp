// Session-message scaling: the vat-style rate adaptation of Sec. III-A and
// the hierarchical representatives of Sec. IX-A.
//
// Panel 1 (flat sessions): the mean reporting interval grows linearly with
// the group size, so the aggregate session bandwidth stays a fixed fraction
// of the data bandwidth no matter how many members there are.
//
// Panel 2 (hierarchy): on a tree of LANs, electing one representative per
// LAN cuts the session packets crossing the backbone by ~the LAN size,
// while every member still learns its distance to its representative.
//
// Panel 3 (large-group session rounds): the simulator-kernel cost of the
// O(G^2) session-message path itself.  Every member multicasts one session
// report per round (G sends, G*(G-1) deliveries, every receiver folding in
// the sender's state report and its echo table); wall-clock throughput at
// G in {50, 200, 500} is recorded into BENCH_session.json so the large-
// session fast path can be tracked across PRs (see EXPERIMENTS.md).
//
// Panel 4 (hierarchy as the primary path; ARCHITECTURE.md §12): two-level
// reporting at G in {5000, 20000, 50000} (--hierarchy-gs overrides).  Each
// run partitions a tree of ~sqrt(G) LANs into that many areas, lets the
// coordinator drive TTL-scoped local reports plus representative global
// reports, and measures sustained session messages per wall-clock second
// over two report intervals.  A flat-path baseline at G = 5000 (sampled
// senders, so its throughput is if anything overestimated) anchors the
// speedup; the bench exits non-zero if G = 20000 does not sustain at least
// 5x the flat baseline.  Results land in BENCH_session.json's `hierarchy`
// section (gated by scripts/check_bench.py); wheel-occupancy keys record
// the areas-not-members heap-growth evidence.
#include <chrono>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common.h"
#include "srm/session_hierarchy.h"

namespace {

std::vector<std::size_t> parse_size_list(const std::string& spec) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string tok = spec.substr(pos, comma - pos);
    if (!tok.empty()) out.push_back(static_cast<std::size_t>(std::stoull(tok)));
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace srm;
  const util::Flags flags(argc, argv);
  const std::uint64_t seed = flags.get_seed(42);
  const int rounds = static_cast<int>(flags.get_int("rounds", 5));
  const std::string json_path =
      flags.get_string("bench-json", "BENCH_session.json");

  bench::print_header("Session-message scaling (Sec. III-A, IX-A)", seed, "");

  {
    std::cout << "flat reporting: interval scales with G, aggregate "
                 "bandwidth constant\n";
    SessionConfig cfg;
    cfg.bandwidth_fraction = 0.05;
    cfg.data_bandwidth_bytes = 8000.0;
    cfg.min_interval = 0.0;
    SessionScheduler sched(cfg, util::Rng(seed));
    util::Table t({"G", "mean interval (s)", "per-member B/s",
                   "aggregate B/s", "budget B/s"});
    for (std::size_t g : {10u, 100u, 1000u, 10000u}) {
      const double iv = sched.mean_interval(g, 100);
      const double per = 100.0 / iv;
      t.add_row({util::Table::num(g), util::Table::num(iv, 2),
                 util::Table::num(per, 2),
                 util::Table::num(per * static_cast<double>(g), 1),
                 util::Table::num(0.05 * 8000.0, 1)});
    }
    t.print(std::cout);
  }

  {
    std::cout << "\nhierarchical representatives on a tree of LANs "
                 "(session packets crossing the backbone, 500 s)\n";
    util::Table t({"LANs x hosts", "members", "flat backbone rx",
                   "hier backbone rx", "reduction"});
    for (const auto& [lans, hosts] : std::vector<std::pair<int, int>>{
             {5, 5}, {10, 5}, {10, 10}}) {
      auto run = [&](bool hierarchical) -> std::uint64_t {
        auto tl = topo::make_tree_of_lans(lans, 3, hosts);
        SrmConfig cfg;
        cfg.session.enabled = false;  // both arms drive reporting below
        if (hierarchical) {
          cfg.hierarchy.enabled = true;
          cfg.hierarchy.local_ttl = 2;
          cfg.hierarchy.report_interval = 10.0;
          cfg.hierarchy.areas = static_cast<std::uint32_t>(lans);
        }
        harness::SimSession session(std::move(tl.topo), tl.workstations,
                                    {cfg, seed, 1});
        std::uint64_t backbone_rx = 0;
        session.network().set_delivery_observer(
            [&](const net::Packet& p, const net::DeliveryInfo& info) {
              if (dynamic_cast<const SessionMessage*>(p.payload.get()) &&
                  info.hops > 2) {
                ++backbone_rx;
              }
            });
        if (hierarchical) {
          session.run_until(500.0);
        } else {
          // Flat: every member reports globally each interval (same mean
          // rate as the hierarchy's report_interval above).
          util::Rng rng(seed ^ 0xBEEF);
          for (int round = 0; round < 50; ++round) {
            session.for_each_agent([&](SrmAgent& a) {
              session.queue().schedule_after(
                  10.0 * round + rng.uniform(0.0, 10.0),
                  [&a] { a.send_session_message(); });
            });
          }
          session.queue().run_until(500.0);
        }
        return backbone_rx;
      };
      const auto flat = run(false);
      const auto hier = run(true);
      t.add_row({std::to_string(lans) + " x " + std::to_string(hosts),
                 util::Table::num(std::size_t(lans * hosts)),
                 util::Table::num(flat), util::Table::num(hier),
                 util::Table::num(static_cast<double>(flat) /
                                      std::max<std::uint64_t>(1, hier),
                                  1) +
                     "x"});
    }
    t.print(std::cout);
    std::cout << "\nExpected: the hierarchy's backbone session traffic is "
                 "cut by roughly the\nLAN size (only one representative per "
                 "LAN reports globally).\n";
  }

  {
    std::cout << "\nlarge-group session rounds: every member reports once "
                 "per round\n(G sends, G*(G-1) deliveries; estimated "
                 "distances, echoes for every peer)\n";
    util::PerfJson json(json_path, "session_scaling");
    util::Table t({"G", "nodes", "rounds", "wall (s)", "session msgs/s",
                   "deliveries/s"});
    for (std::size_t g : {std::size_t{50}, std::size_t{200},
                          std::size_t{500}}) {
      const std::size_t nodes = 2 * g;
      util::Rng rng(seed + g);
      auto members = harness::choose_members(nodes, g, rng);
      SrmConfig cfg;
      cfg.distance_mode = DistanceMode::kEstimated;
      cfg.session.enabled = false;  // rounds are driven explicitly below
      harness::SimSession session(topo::make_bounded_degree_tree(nodes, 4),
                                  members, {cfg, seed, 1});
      auto run_round = [&](double base) {
        for (std::size_t i = 0; i < session.member_count(); ++i) {
          SrmAgent& a = session.agent(i);
          session.queue().schedule_at(
              base + static_cast<double>(i) / static_cast<double>(g),
              [&a] { a.send_session_message(); });
        }
        session.queue().run();
      };
      // Warm-up round: populates every estimator's peer table so measured
      // rounds carry full-size echo tables (the steady state).
      run_round(0.0);

      const auto start = std::chrono::steady_clock::now();
      for (int r = 0; r < rounds; ++r) {
        run_round(100.0 * static_cast<double>(r + 1));
      }
      const std::chrono::duration<double> wall =
          std::chrono::steady_clock::now() - start;

      const double msgs = static_cast<double>(g) * rounds;
      const double deliveries = msgs * static_cast<double>(g - 1);
      t.add_row({util::Table::num(g), util::Table::num(nodes),
                 util::Table::num(static_cast<std::size_t>(rounds)),
                 util::Table::num(wall.count(), 3),
                 util::Table::num(msgs / wall.count(), 0),
                 util::Table::num(deliveries / wall.count(), 0)});
      if (!json_path.empty()) {
        const std::string p = "g" + std::to_string(g) + "_";
        json.set(p + "wall_seconds", wall.count());
        json.set(p + "messages_per_second", msgs / wall.count());
        json.set(p + "deliveries_per_second", deliveries / wall.count());
      }
    }
    t.print(std::cout);
    if (!json_path.empty()) {
      json.set("rounds", static_cast<double>(rounds));
      json.save();
      std::cout << "\n[perf] " << json_path << " updated (session_scaling)\n";
    }
  }

  {
    const std::vector<std::size_t> gs =
        parse_size_list(flags.get_string("hierarchy-gs", "5000,20000,50000"));
    if (gs.empty()) return 0;
    std::cout << "\nhierarchy as the primary path: two-level reporting at "
                 "G = 5k-50k\n(local reports TTL-scoped to the area, one "
                 "representative per area reports\nglobally; throughput "
                 "measured over two report intervals after one warm-up)\n";
    util::PerfJson json(json_path, "hierarchy");

    // Flat-path anchor at G = 5000 on the same topology family.  Only 250
    // sampled members send, so echo tables stay small and the measured
    // per-message cost UNDERestimates the true all-senders steady state —
    // the speedup below is therefore conservative.
    double flat_rate = 0.0;
    {
      const std::size_t g = 5000;
      const std::size_t senders = 250;
      const auto areas = static_cast<int>(std::lround(
          std::sqrt(static_cast<double>(g))));
      const int hosts = static_cast<int>((g + areas - 1) / areas);
      auto tl = topo::make_tree_of_lans(areas, 4, hosts);
      std::vector<net::NodeId> members(tl.workstations.begin(),
                                       tl.workstations.begin() + g);
      SrmConfig cfg;
      cfg.distance_mode = DistanceMode::kEstimated;
      cfg.session.enabled = false;  // rounds are driven explicitly below
      harness::SimSession session(std::move(tl.topo), members,
                                  {cfg, seed, 1});
      const std::size_t stride = g / senders;
      auto run_round = [&](double base) {
        for (std::size_t i = 0; i < senders; ++i) {
          SrmAgent& a = session.agent(i * stride);
          session.queue().schedule_at(base + 0.01 * static_cast<double>(i),
                                      [&a] { a.send_session_message(); });
        }
        session.queue().run();
      };
      run_round(0.0);  // warm: estimators intern every sampled sender
      const auto start = std::chrono::steady_clock::now();
      for (int r = 0; r < rounds; ++r) {
        run_round(100.0 * static_cast<double>(r + 1));
      }
      const std::chrono::duration<double> wall =
          std::chrono::steady_clock::now() - start;
      flat_rate = static_cast<double>(senders) * rounds / wall.count();
      std::cout << "flat baseline, G=5000 (" << senders << " sampled "
                << "senders x " << rounds << " rounds): "
                << util::Table::num(flat_rate, 0) << " msgs/s\n";
      if (!json_path.empty()) {
        json.set("flat5000_messages_per_second", flat_rate);
        json.set("flat5000_wall_seconds", wall.count());
      }
    }

    util::Table t({"G", "areas", "msgs (2 iv)", "wall (s)", "msgs/s",
                   "wheel buckets", "wheel items", "vs flat5000"});
    double g20000_rate = 0.0;
    for (std::size_t g : gs) {
      const auto areas = static_cast<std::size_t>(std::lround(
          std::sqrt(static_cast<double>(g))));
      const int hosts = static_cast<int>((g + areas - 1) / areas);
      auto tl = topo::make_tree_of_lans(static_cast<int>(areas), 4, hosts);
      std::vector<net::NodeId> members(tl.workstations.begin(),
                                       tl.workstations.begin() + g);
      SrmConfig cfg;
      cfg.distance_mode = DistanceMode::kEstimated;
      cfg.hierarchy.enabled = true;
      cfg.hierarchy.local_ttl = 2;
      cfg.hierarchy.report_interval = 10.0;
      cfg.hierarchy.areas = static_cast<std::uint32_t>(areas);
      harness::SimSession session(std::move(tl.topo), members,
                                  {cfg, seed, 1});
      const SessionHierarchy& hier = *session.hierarchy();

      session.run_until(cfg.hierarchy.report_interval);  // warm-up interval
      // Heap-occupancy evidence: every member holds a pending report, yet
      // live heap entries stay bounded by areas x wheel buckets.
      const std::size_t buckets = hier.pending_wheel_buckets();
      const std::size_t items = hier.pending_wheel_items();
      const std::uint64_t sent0 =
          hier.local_reports_sent() + hier.global_reports_sent();

      const auto start = std::chrono::steady_clock::now();
      session.run_until(3.0 * cfg.hierarchy.report_interval);
      const std::chrono::duration<double> wall =
          std::chrono::steady_clock::now() - start;
      const double msgs = static_cast<double>(
          hier.local_reports_sent() + hier.global_reports_sent() - sent0);
      const double rate = msgs / wall.count();
      if (g == 20000) g20000_rate = rate;
      t.add_row({util::Table::num(g), util::Table::num(areas),
                 util::Table::num(msgs, 0), util::Table::num(wall.count(), 3),
                 util::Table::num(rate, 0), util::Table::num(buckets),
                 util::Table::num(items),
                 util::Table::num(rate / flat_rate, 1) + "x"});
      if (!json_path.empty()) {
        const std::string p = "g" + std::to_string(g) + "_";
        json.set(p + "messages_per_second", rate);
        json.set(p + "wall_seconds", wall.count());
        json.set(p + "areas", static_cast<double>(areas));
        json.set(p + "wheel_buckets", static_cast<double>(buckets));
        json.set(p + "wheel_items", static_cast<double>(items));
      }
    }
    t.print(std::cout);
    if (!json_path.empty()) {
      if (g20000_rate > 0.0) {
        json.set("speedup_vs_flat5000", g20000_rate / flat_rate);
      }
      json.save();
      std::cout << "\n[perf] " << json_path << " updated (hierarchy)\n";
    }
    if (g20000_rate > 0.0 && g20000_rate < 5.0 * flat_rate) {
      std::cout << "FAIL: hierarchy at G=20000 sustained "
                << util::Table::num(g20000_rate / flat_rate, 2)
                << "x the flat G=5000 path (< 5x required)\n";
      return 1;
    }
  }
  return 0;
}
