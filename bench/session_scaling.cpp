// Session-message scaling: the vat-style rate adaptation of Sec. III-A and
// the hierarchical representatives of Sec. IX-A.
//
// Panel 1 (flat sessions): the mean reporting interval grows linearly with
// the group size, so the aggregate session bandwidth stays a fixed fraction
// of the data bandwidth no matter how many members there are.
//
// Panel 2 (hierarchy): on a tree of LANs, electing one representative per
// LAN cuts the session packets crossing the backbone by ~the LAN size,
// while every member still learns its distance to its representative.
#include <memory>

#include "common.h"
#include "srm/session_hierarchy.h"

int main(int argc, char** argv) {
  using namespace srm;
  const util::Flags flags(argc, argv);
  const std::uint64_t seed = flags.get_seed(42);

  bench::print_header("Session-message scaling (Sec. III-A, IX-A)", seed, "");

  {
    std::cout << "flat reporting: interval scales with G, aggregate "
                 "bandwidth constant\n";
    SessionConfig cfg;
    cfg.bandwidth_fraction = 0.05;
    cfg.data_bandwidth_bytes = 8000.0;
    cfg.min_interval = 0.0;
    SessionScheduler sched(cfg, util::Rng(seed));
    util::Table t({"G", "mean interval (s)", "per-member B/s",
                   "aggregate B/s", "budget B/s"});
    for (std::size_t g : {10u, 100u, 1000u, 10000u}) {
      const double iv = sched.mean_interval(g, 100);
      const double per = 100.0 / iv;
      t.add_row({util::Table::num(g), util::Table::num(iv, 2),
                 util::Table::num(per, 2),
                 util::Table::num(per * static_cast<double>(g), 1),
                 util::Table::num(0.05 * 8000.0, 1)});
    }
    t.print(std::cout);
  }

  {
    std::cout << "\nhierarchical representatives on a tree of LANs "
                 "(session packets crossing the backbone, 500 s)\n";
    util::Table t({"LANs x hosts", "members", "flat backbone rx",
                   "hier backbone rx", "reduction"});
    for (const auto& [lans, hosts] : std::vector<std::pair<int, int>>{
             {5, 5}, {10, 5}, {10, 10}}) {
      auto run = [&](bool hierarchical) -> std::uint64_t {
        auto tl = topo::make_tree_of_lans(lans, 3, hosts);
        harness::SimSession session(std::move(tl.topo), tl.workstations,
                                    {SrmConfig{}, seed, 1});
        std::uint64_t backbone_rx = 0;
        session.network().set_delivery_observer(
            [&](const net::Packet& p, const net::DeliveryInfo& info) {
              if (dynamic_cast<const SessionMessage*>(p.payload.get()) &&
                  info.hops > 2) {
                ++backbone_rx;
              }
            });
        util::Rng rng(seed ^ 0xBEEF);
        HierarchyConfig hcfg;
        hcfg.local_ttl = 2;
        hcfg.report_interval = 10.0;
        std::vector<std::unique_ptr<SessionHierarchy>> hier;
        if (hierarchical) {
          session.for_each_agent([&](SrmAgent& a) {
            hier.push_back(
                std::make_unique<SessionHierarchy>(a, hcfg, rng.fork()));
            hier.back()->start();
          });
          session.queue().run_until(500.0);
        } else {
          for (int round = 0; round < 50; ++round) {
            session.for_each_agent([&](SrmAgent& a) {
              session.queue().schedule_after(
                  10.0 * round + rng.uniform(0.0, 10.0),
                  [&a] { a.send_session_message(); });
            });
          }
          session.queue().run_until(500.0);
        }
        return backbone_rx;
      };
      const auto flat = run(false);
      const auto hier = run(true);
      t.add_row({std::to_string(lans) + " x " + std::to_string(hosts),
                 util::Table::num(std::size_t(lans * hosts)),
                 util::Table::num(flat), util::Table::num(hier),
                 util::Table::num(static_cast<double>(flat) /
                                      std::max<std::uint64_t>(1, hier),
                                  1) +
                     "x"});
    }
    t.print(std::cout);
    std::cout << "\nExpected: the hierarchy's backbone session traffic is "
                 "cut by roughly the\nLAN size (only one representative per "
                 "LAN reports globally).\n";
  }
  return 0;
}
