// Figure 15: local recovery with two-step TTL-scoped repairs in a
// bounded-degree tree of 1000 nodes (degree 4), all link thresholds 1.
//
// Following Sec. VII-B's methodology, this evaluates the OPTIMAL execution
// of the local recovery algorithms: the loss neighborhood is stable, the
// requestor knows t_loss (minimum TTL to reach every member sharing the
// loss) and t_repair (minimum TTL to reach some member holding the data),
// there is a single request (from the affected member closest to the
// failure, TTL = max(t_loss, t_repair)) and a single repair (from the
// closest reachable holder).  Scenarios are restricted to loss
// neighborhoods containing at most 1/10 of the session.
//
// Panels: fraction of session members reached by the repair, and the repair
// neighborhood as a multiple of the loss neighborhood.  A one-step series
// (repair TTL = request TTL + hops back to the requestor) is included for
// the Sec. VII-B comparison: one-step is "fairly inefficient".
#include <algorithm>
#include <set>

#include "common.h"

int main(int argc, char** argv) {
  using namespace srm;
  const util::Flags flags(argc, argv);
  const std::uint64_t seed = flags.get_seed(42);
  const int trials = static_cast<int>(flags.get_int("trials", 20));
  const std::size_t nodes =
      static_cast<std::size_t>(flags.get_int("nodes", 1000));

  bench::print_header(
      "Figure 15: two-step local recovery, tree 1000/deg4, thresholds 1",
      seed,
      "optimal execution; loss neighborhood <= G/10; " +
          std::to_string(trials) + " trials per size "
          "(one-step series included for comparison)");

  util::Rng rng(seed);
  util::Table table({"G", "2-step frac med [q1,q3]",
                     "2-step repair/loss med [q1,q3]", "1-step frac mean",
                     "1-step repair/loss mean"});

  const auto topo = topo::make_bounded_degree_tree(nodes, 4);
  net::Routing routing(topo);

  for (std::size_t g : {20u, 50u, 100u, 150u, 200u, 250u}) {
    util::Samples two_frac, two_ratio, one_frac, one_ratio;
    int done = 0;
    int attempts = 0;
    while (done < trials && ++attempts < trials * 200) {
      auto members = harness::choose_members(nodes, g, rng);
      const net::NodeId source = members[rng.index(g)];
      const auto congested =
          harness::choose_congested_link(routing, source, members, rng);
      const auto affected =
          harness::affected_members(routing, source, congested, members);
      if (affected.empty() ||
          affected.size() > std::max<std::size_t>(1, g / 10)) {
        continue;  // paper restricts to small loss neighborhoods
      }

      // Requestor: affected member closest to the failure point.
      net::NodeId requestor = affected[0];
      int best = std::numeric_limits<int>::max();
      for (net::NodeId m : affected) {
        const int h = routing.hop_count(congested.to, m);
        if (h < best) {
          best = h;
          requestor = m;
        }
      }
      std::vector<net::NodeId> holders;
      for (net::NodeId m : members) {
        if (std::find(affected.begin(), affected.end(), m) == affected.end() &&
            m != requestor) {
          holders.push_back(m);
        }
      }
      const int t_loss =
          harness::min_ttl_to_reach_all(topo, requestor, affected);
      const int t_repair =
          harness::min_ttl_to_reach_any(topo, requestor, holders);
      if (t_loss < 0 || t_repair < 0) continue;
      const int t = std::max(t_loss, t_repair);

      // Responder: the closest holder the request reaches.
      const auto request_reach = harness::ttl_reach(topo, requestor, t);
      net::NodeId responder = net::kInvalidNode;
      int rbest = std::numeric_limits<int>::max();
      for (net::NodeId h : holders) {
        if (std::find(request_reach.begin(), request_reach.end(), h) ==
            request_reach.end()) {
          continue;
        }
        const int d = routing.hop_count(requestor, h);
        if (d < rbest) {
          rbest = d;
          responder = h;
        }
      }
      if (responder == net::kInvalidNode) continue;

      const std::set<net::NodeId> member_set(members.begin(), members.end());
      auto members_reached = [&](const std::vector<net::NodeId>& reach,
                                 net::NodeId origin) {
        std::set<net::NodeId> got;
        if (member_set.count(origin)) got.insert(origin);
        for (net::NodeId v : reach) {
          if (member_set.count(v)) got.insert(v);
        }
        return got;
      };

      // Two-step: repair at TTL t from the responder, re-multicast at TTL t
      // from the requestor.
      auto two = members_reached(harness::ttl_reach(topo, responder, t),
                                 responder);
      for (net::NodeId v :
           members_reached(harness::ttl_reach(topo, requestor, t), requestor)) {
        two.insert(v);
      }
      // One-step: repair at TTL t + hops(responder, requestor).
      const int one_ttl = t + routing.hop_count(responder, requestor);
      const auto one = members_reached(
          harness::ttl_reach(topo, responder, one_ttl), responder);

      const double gd = static_cast<double>(g);
      const double loss_size = static_cast<double>(affected.size());
      two_frac.add(static_cast<double>(two.size()) / gd);
      two_ratio.add(static_cast<double>(two.size()) / loss_size);
      one_frac.add(static_cast<double>(one.size()) / gd);
      one_ratio.add(static_cast<double>(one.size()) / loss_size);
      ++done;
    }
    if (done == 0) continue;
    table.add_row({util::Table::num(g),
                   bench::quartile_cell(two_frac),
                   bench::quartile_cell(two_ratio),
                   util::Table::num(one_frac.mean(), 2),
                   util::Table::num(one_ratio.mean(), 2)});
  }
  table.print(std::cout);
  std::cout << "\nPaper check: two-step repairs reach a small fraction of "
               "the session\n(shrinking as G grows) and a small multiple of "
               "the loss neighborhood;\none-step repairs over-cover "
               "substantially.\n";
  return 0;
}
