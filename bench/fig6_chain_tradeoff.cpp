// Figure 6: the delay/duplicates tradeoff on a chain topology, with the
// failed edge 1, 2, 5, or 10 hops from the source, as a function of C2
// (C1 = 2).  On a chain, deterministic (distance-ordered) suppression means
// C2 = 0 is optimal: exactly one request, minimum delay.  Increasing C2 can
// add duplicates, but only a small number — the chain's distance diversity
// keeps suppressing.
#include "common.h"

int main(int argc, char** argv) {
  using namespace srm;
  const util::Flags flags(argc, argv);
  const std::uint64_t seed = flags.get_seed(42);
  const int trials = static_cast<int>(flags.get_int("trials", 20));
  const std::size_t n = static_cast<std::size_t>(flags.get_int("nodes", 100));

  bench::print_header(
      "Figure 6: chain topology, delay vs duplicates as f(C2)", seed,
      "chain of " + std::to_string(n) +
          " members, source=node0, failed edge at hops {1,2,5,10}; C1=2; " +
          std::to_string(trials) + " trials per point");

  util::Rng rng(seed);
  util::Table table({"C2", "hops", "requests mean", "delay/RTT mean"});

  std::vector<net::NodeId> members(n);
  for (std::size_t i = 0; i < n; ++i) members[i] = static_cast<net::NodeId>(i);

  for (int hops : {1, 2, 5, 10}) {
    for (int c2 = 0; c2 <= 100; c2 += (c2 < 10 ? 1 : 10)) {
      util::Samples req_count, req_delay;
      for (int t = 0; t < trials; ++t) {
        bench::TrialSpec spec;
        spec.topo = topo::make_chain(n);
        spec.members = members;
        spec.source = 0;
        spec.congested = harness::DirectedLink{
            static_cast<net::NodeId>(hops - 1), static_cast<net::NodeId>(hops)};
        spec.config = bench::paper_sim_config(
            TimerParams{2.0, static_cast<double>(c2), 1.0, 1.0});
        spec.seed = rng.next_u64();
        const auto r = bench::run_trial(std::move(spec));
        req_count.add(static_cast<double>(r.requests));
        if (r.closest_request_delay_valid) {
          req_delay.add(r.closest_request_delay_rtt);
        }
      }
      table.add_row({util::Table::num(static_cast<std::size_t>(c2)),
                     util::Table::num(static_cast<std::size_t>(hops)),
                     util::Table::num(req_count.mean(), 2),
                     util::Table::num(req_delay.mean(), 3)});
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper check: C2=0 gives exactly 1 request at minimum delay; "
               "increasing C2\nraises delay and adds at most a small number "
               "of duplicates, worst when the\nfailed edge is closest to the "
               "source.\n";
  return 0;
}
