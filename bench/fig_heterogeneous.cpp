// Robustness variations from the extended report ([12]): "point-to-point
// topologies where the edges have a range of propagation delays, and
// topologies where the underlying network is more dense than a tree.  None
// of these variations that we have explored have significantly affected the
// performance of the loss recovery algorithms with fixed timer parameters."
//
// Additionally: the same dense-session scenarios run with session-message-
// ESTIMATED distances (Sec. III-A) instead of the routing oracle, verifying
// the protocol performs the same on its own distance estimates.
#include <memory>

#include "common.h"

namespace {

using namespace srm;

// Builds a random tree and rescales every link delay by a random factor in
// [0.2, 5.0] — two-and-a-half orders of delay diversity.
net::Topology heterogeneous_tree(std::size_t n, util::Rng& rng) {
  net::Topology uniform = topo::make_random_tree(n, rng);
  net::Topology out(n);
  for (const net::Link& l : uniform.links()) {
    out.add_link(l.a, l.b, rng.uniform(0.2, 5.0));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace srm;
  const util::Flags flags(argc, argv);
  const std::uint64_t seed = flags.get_seed(42);
  const int trials = static_cast<int>(flags.get_int("trials", 20));
  const std::size_t n = 100;

  bench::print_header(
      "Robustness variations ([12]): heterogeneous delays, dense graphs, "
      "estimated distances",
      seed,
      "density-1 sessions of 100, fixed timers; " + std::to_string(trials) +
          " trials per row");

  util::Rng rng(seed);
  util::Table table({"variation", "requests med", "repairs med",
                     "delay/RTT med", "requests mean", "repairs mean"});

  std::vector<net::NodeId> members(n);
  for (std::size_t i = 0; i < n; ++i) members[i] = static_cast<net::NodeId>(i);

  struct Row {
    std::string name;
    std::function<net::Topology(util::Rng&)> build;
    DistanceMode mode;
  };
  const std::vector<Row> rows{
      {"uniform delays (baseline)",
       [&](util::Rng& r) { return topo::make_random_tree(n, r); },
       DistanceMode::kOracle},
      {"delays x[0.2, 5.0]",
       [&](util::Rng& r) { return heterogeneous_tree(n, r); },
       DistanceMode::kOracle},
      {"denser than a tree (150 edges)",
       [&](util::Rng& r) { return topo::make_random_graph(n, 150, r); },
       DistanceMode::kOracle},
      {"estimated distances (sessions)",
       [&](util::Rng& r) { return topo::make_random_tree(n, r); },
       DistanceMode::kEstimated},
  };

  for (const Row& row : rows) {
    bench::PanelStats stats;
    for (int t = 0; t < trials; ++t) {
      auto topo = row.build(rng);
      const auto source = static_cast<net::NodeId>(rng.index(n));
      SrmConfig cfg = bench::paper_sim_config(paper_fixed_params(n));
      cfg.distance_mode = row.mode;
      harness::SimSession session(std::move(topo), members,
                                  {cfg, rng.next_u64(), 1});
      if (row.mode == DistanceMode::kEstimated) {
        // Warm up the estimators with two full session-message rounds
        // (converged estimates, as the paper's simulations assume).
        for (int r = 0; r < 2; ++r) {
          session.for_each_agent([&](SrmAgent& a) {
            a.send_session_message();
            session.queue().run();
          });
        }
      }
      const auto congested = harness::choose_congested_link(
          session.network().routing(), source, members, rng);
      harness::RoundSpec round;
      round.source_node = source;
      round.congested = congested;
      round.page = PageId{static_cast<SourceId>(source), 0};
      stats.add(harness::run_loss_round(session, round, 0));
    }
    table.add_row({row.name,
                   util::Table::num(stats.requests.median(), 1),
                   util::Table::num(stats.repairs.median(), 1),
                   util::Table::num(stats.delay_rtt.median(), 2),
                   util::Table::num(stats.requests.mean(), 2),
                   util::Table::num(stats.repairs.mean(), 2)});
  }
  table.print(std::cout);
  std::cout << "\nPaper check ([12]): none of the variations significantly "
               "affects the loss\nrecovery algorithms — every row stays "
               "near 1 request / 1 repair, including\nwith distances "
               "learned entirely from session-message timestamps.\n";
  return 0;
}
