// Figure 4: sparse sessions on a large bounded-degree tree (1000 nodes,
// interior degree 4), random congested link, fixed timer parameters.
// The paper's point: with members scattered in a large network, the fixed
// parameters give a noticeably higher number of repairs per loss than the
// dense case of Fig. 3 — the motivation for the adaptive algorithm
// (compare with fig14_adaptive_sweep, same scenarios, adaptive timers).
//
// Trials are independent replications: specs (and all RNG draws) are built
// serially, then fanned across --threads workers; statistics are merged in
// spec order, so every thread count prints the same numbers.
#include "common.h"

int main(int argc, char** argv) {
  using namespace srm;
  const util::Flags flags(argc, argv);
  const std::uint64_t seed = flags.get_seed(42);
  const int trials = static_cast<int>(flags.get_int("trials", 20));
  const std::size_t nodes = static_cast<std::size_t>(flags.get_int("nodes", 1000));
  const harness::ReplicationRunner runner(bench::flag_threads(flags));
  bench::SweepPerf perf(flags, "fig4_sparse_tree", runner.threads());

  bench::print_header(
      "Figure 4: bounded-degree tree (1000 nodes, degree 4), sparse sessions",
      seed,
      "fixed timers C1=C2=2, D1=D2=log10(G); random members/source/link; " +
          std::to_string(trials) + " trials per size; threads=" +
          std::to_string(runner.threads()));

  util::Rng rng(seed);
  util::Table table({"G", "requests med [q1,q3]", "repairs med [q1,q3]",
                     "delay/RTT med [q1,q3]", "requests mean",
                     "repairs mean"});

  for (std::size_t g = 10; g <= 100; g += 10) {
    std::vector<bench::TrialSpec> specs;
    specs.reserve(static_cast<std::size_t>(trials));
    for (int t = 0; t < trials; ++t) {
      bench::TrialSpec spec;
      spec.topo = topo::make_bounded_degree_tree(nodes, 4);
      spec.members = harness::choose_members(nodes, g, rng);
      spec.source = spec.members[rng.index(g)];
      net::Routing routing(spec.topo);
      spec.congested = harness::choose_congested_link(routing, spec.source,
                                                      spec.members, rng);
      spec.config = bench::paper_sim_config(paper_fixed_params(g));
      spec.seed = rng.next_u64();
      specs.push_back(std::move(spec));
    }
    perf.add_replications(specs.size());
    bench::PanelStats stats;
    for (const auto& r : bench::run_trials(std::move(specs), runner)) {
      stats.add(r);
    }
    table.add_row({util::Table::num(g),
                   bench::quartile_cell(stats.requests),
                   bench::quartile_cell(stats.repairs),
                   bench::quartile_cell(stats.delay_rtt),
                   util::Table::num(stats.requests.mean(), 2),
                   util::Table::num(stats.repairs.mean(), 2)});
  }
  table.print(std::cout);
  std::cout << "\nPaper check: \"the average number of repairs for each loss "
               "is somewhat high\"\ncompared with Fig. 3's ~1; delays remain "
               "around 1-2 RTT.\n";
  perf.finish();
  return 0;
}
