// Heavy-traffic workload suite: the four seeded workload generators
// (src/workload/workload.h, ARCHITECTURE.md §13) run on the simulator
// backend and report what the recovery machinery did under each traffic
// shape — flash-crowd page-state recovery, conference talk-spurts with
// receiver-side loss, diurnal membership churn, and correlated repair
// storms.
//
// Every recorded metric is virtual-time (deterministic for a given seed and
// member count), so BENCH_workload.json is machine-independent and
// scripts/check_bench.py gates the ``*_us`` recovery percentiles exactly:
// any drift is a behavioral change in the protocol, not measurement noise.
// The checker verdict doubles as the pass/fail exit code.
#include <chrono>
#include <iostream>

#include "util/flags.h"
#include "util/perf_json.h"
#include "util/table.h"
#include "workload/workload.h"

int main(int argc, char** argv) {
  using namespace srm;
  const util::Flags flags(argc, argv);
  const std::uint64_t seed = flags.get_seed(42);
  const auto members =
      static_cast<std::size_t>(flags.get_int("members", 48));
  const std::string json_path =
      flags.get_string("bench-json", "BENCH_workload.json");
  util::PerfJson json(json_path, "workload_suite");
  const auto start = std::chrono::steady_clock::now();

  util::print_banner(std::cout,
                     "Workload suite: heavy-traffic recovery invariants");
  std::cout << "seed=" << seed << "\nstar topology, peak " << members
            << " members, sim backend; every metric is virtual-time\n\n";

  util::Table table({"workload", "sends", "joins", "departs", "drops",
                     "losses", "requests", "repairs", "recovered",
                     "p50 (s)", "p99 (s)", "max (s)", "invariants"});
  bool all_passed = true;
  for (const std::string& name : workload::workload_names()) {
    const workload::WorkloadSpec spec =
        workload::make_workload(name, members, seed);
    const workload::WorkloadResult r = workload::run_workload_sim(spec);
    all_passed = all_passed && r.passed;
    table.add_row({name, util::Table::num(r.data_sent),
                   util::Table::num(r.joins), util::Table::num(r.departures),
                   util::Table::num(r.scripted_drops),
                   util::Table::num(r.losses), util::Table::num(r.requests),
                   util::Table::num(r.repairs),
                   util::Table::num(r.recoveries),
                   util::Table::num(r.recovery_p50, 2),
                   util::Table::num(r.recovery_p99, 2),
                   util::Table::num(r.recovery_max, 2),
                   r.passed ? "PASS" : "FAIL"});

    // check_bench.py gates the *_us keys (lower is better); the raw counters
    // ride along as informational context for diffing behavior changes.
    std::string prefix = name;
    for (char& c : prefix) {
      if (c == '-') c = '_';
    }
    prefix += "_";
    json.set(prefix + "recovery_p50_us", r.recovery_p50 * 1e6);
    json.set(prefix + "recovery_p99_us", r.recovery_p99 * 1e6);
    json.set(prefix + "recovery_max_us", r.recovery_max * 1e6);
    json.set(prefix + "losses", static_cast<double>(r.losses));
    json.set(prefix + "requests", static_cast<double>(r.requests));
    json.set(prefix + "repairs", static_cast<double>(r.repairs));
    json.set(prefix + "scripted_drops",
             static_cast<double>(r.scripted_drops));
    if (!r.passed) {
      std::cout << name << " checker report:\n" << r.checker.summary()
                << "\n";
    }
  }
  table.print(std::cout);
  std::cout << "\nEvery loss at a surviving member must recover within the\n"
               "workload's deadline with no repair storms; latencies are\n"
               "detection -> recovery in virtual seconds.\n";

  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;
  if (!json_path.empty()) {
    json.set("members", static_cast<double>(members));
    json.set("wall_seconds", wall.count());
    json.save();
    std::cout << "\n[perf] " << json_path << " updated (workload_suite)\n";
  }
  return all_passed ? 0 : 1;
}
