// Ablation: the adaptive algorithm's target knobs (Sec. VII-A): "by
// choosing different values for AveDelay and AveDups, tradeoffs can be made
// between the relative importance of low delay and a low number of
// duplicates."  Sweep both targets on one duplicate-heavy scenario and
// report the steady-state operating point each pair converges to.
#include "adaptive_scenario.h"

int main(int argc, char** argv) {
  using namespace srm;
  const util::Flags flags(argc, argv);
  const std::uint64_t seed = flags.get_seed(42);
  const int rounds = static_cast<int>(flags.get_int("rounds", 80));
  const std::size_t nodes = 1000, g = 50;

  bench::print_header(
      "Ablation: AveDups / AveDelay targets (Sec. VII-A tradeoff)", seed,
      "duplicate-heavy scenario, adaptive timers, " + std::to_string(rounds) +
          " rounds; steady state = mean of the last 20 rounds");

  const auto sc = bench::find_duplicate_heavy_scenario(nodes, g, seed);

  util::Table table({"AveDups", "AveDelay", "requests (steady)",
                     "repairs (steady)", "delay/RTT (steady)"});
  for (const double target_dups : {0.5, 1.0, 3.0}) {
    for (const double target_delay : {0.5, 1.0, 3.0}) {
      SrmConfig cfg = bench::paper_sim_config(paper_fixed_params(g));
      cfg.adaptive.enabled = true;
      cfg.adaptive.target_dups = target_dups;
      cfg.adaptive.target_delay = target_delay;
      harness::SimSession session(topo::make_bounded_degree_tree(nodes, 4),
                                  sc.members, {cfg, seed, 1});
      harness::RoundSpec round;
      round.source_node = sc.source;
      round.congested = sc.congested;
      round.page = PageId{static_cast<SourceId>(sc.source), 0};
      util::Samples req, rep, delay;
      for (int r = 0; r < rounds; ++r) {
        const auto res = harness::run_loss_round(session, round, r * 2);
        if (r >= rounds - 20) {
          req.add(static_cast<double>(res.requests));
          rep.add(static_cast<double>(res.repairs));
          delay.add(res.last_member_delay_rtt);
        }
      }
      table.add_row({util::Table::num(target_dups, 1),
                     util::Table::num(target_delay, 1),
                     util::Table::num(req.mean(), 2),
                     util::Table::num(rep.mean(), 2),
                     util::Table::num(delay.mean(), 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected: a tighter duplicate target buys fewer duplicates "
               "at higher delay;\na tighter delay target pulls delay down at "
               "the cost of more duplicates.\n";
  return 0;
}
