// Figure 5: the delay/duplicates tradeoff on a star topology of G = 100
// members, congested link adjacent to the source, as a function of the
// request timer randomization width C2 (C1 = 0 for the analysis panel; the
// simulation panel uses the paper's fixed C1 = 2 whose only effect is a
// minimum delay of 1 RTT).
//
// Top panel (analysis): all members detect simultaneously at distance d = 2
// from the source (leaf-center-leaf); timers are uniform over a width
// C2*d window, a request takes 2 time units leaf-to-leaf, so
//   E[# requests] ~ 1 + (G-2) * 2 / (C2 * d)
//   E[first-timer delay]/RTT ~ C1/2 + C2/(2*(G-1))   (RTT = 2d = 4)
// Bottom panel (simulation) must agree.
#include <cmath>

#include "common.h"

int main(int argc, char** argv) {
  using namespace srm;
  const util::Flags flags(argc, argv);
  const std::uint64_t seed = flags.get_seed(42);
  const int trials = static_cast<int>(flags.get_int("trials", 20));
  const std::size_t g = static_cast<std::size_t>(flags.get_int("members", 100));

  bench::print_header(
      "Figure 5: star topology, delay vs duplicate requests as f(C2)", seed,
      "G=" + std::to_string(g) +
          " leaves, source=leaf0, drop adjacent to source; C1=2; " +
          std::to_string(trials) + " trials per C2");

  util::Rng rng(seed);
  util::Table table({"C2", "E[req] analysis", "req sim mean",
                     "E[delay/RTT] analysis", "delay/RTT sim mean"});

  const double c1 = 2.0;
  const double d = 2.0;  // leaf-to-leaf via the center
  for (int c2 = 0; c2 <= 100; c2 += (c2 < 10 ? 1 : 10)) {
    util::Samples req_count, req_delay;
    for (int t = 0; t < trials; ++t) {
      auto star = topo::make_star(g);
      bench::TrialSpec spec;
      spec.source = star.leaves[0];
      spec.congested = harness::DirectedLink{star.leaves[0], star.center};
      spec.members = star.leaves;
      spec.topo = std::move(star.topo);
      spec.config = bench::paper_sim_config(
          TimerParams{c1, static_cast<double>(c2),
                      std::log10(static_cast<double>(g)),
                      std::log10(static_cast<double>(g))});
      spec.seed = rng.next_u64();
      const auto r = bench::run_trial(std::move(spec));
      req_count.add(static_cast<double>(r.requests));
      if (r.closest_request_delay_valid) {
        req_delay.add(r.closest_request_delay_rtt);
      }
    }
    const double gd = static_cast<double>(g);
    const double exp_req =
        c2 == 0 ? gd - 1.0
                : std::min(gd - 1.0, 1.0 + (gd - 2.0) * 2.0 / (c2 * d));
    const double exp_delay = c1 / 2.0 + c2 / (2.0 * (gd - 1.0));
    table.add_row({util::Table::num(static_cast<std::size_t>(c2)),
                   util::Table::num(exp_req, 2),
                   util::Table::num(req_count.mean(), 2),
                   util::Table::num(exp_delay, 3),
                   util::Table::num(req_delay.mean(), 3)});
  }
  table.print(std::cout);
  std::cout << "\nPaper check: increasing C2 cuts duplicate requests ~1/C2 "
               "while the delay\ngrows only slightly; C2<=1 gives the full "
               "G-1 implosion.\n";
  return 0;
}
