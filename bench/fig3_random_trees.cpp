// Figure 3: loss recovery on random labeled trees where every node is a
// session member (density 1).  For each session size N, 20 trials each build
// a fresh random tree, pick a random source and a random congested link on
// the source's multicast tree, drop one packet and run recovery.
// Panels: (a) requests per loss, (b) repairs per loss, (c) recovery delay of
// the last member in units of its RTT to the source.
//
// Paper shape to match: medians of ~1 request and ~1 repair at every size,
// last-member delay below ~2 RTT (competitive with unicast TCP recovery).
//
// Trials are independent replications: specs (and all RNG draws) are built
// serially, then fanned across --threads workers; statistics are merged in
// spec order, so every thread count prints the same numbers.
#include "common.h"

int main(int argc, char** argv) {
  using namespace srm;
  const util::Flags flags(argc, argv);
  const std::uint64_t seed = flags.get_seed(42);
  const int trials = static_cast<int>(flags.get_int("trials", 20));
  const harness::ReplicationRunner runner(bench::flag_threads(flags));
  bench::SweepPerf perf(flags, "fig3_random_trees", runner.threads());

  bench::print_header(
      "Figure 3: random trees, density 1, random congested link", seed,
      "fixed timers C1=C2=2, D1=D2=log10(N); one drop per trial; " +
          std::to_string(trials) + " trials per size; threads=" +
          std::to_string(runner.threads()));

  util::Rng rng(seed);
  util::Table table({"N", "requests med [q1,q3]", "repairs med [q1,q3]",
                     "delay/RTT med [q1,q3]", "delay/RTT mean"});

  for (std::size_t n = 10; n <= 100; n += 10) {
    std::vector<bench::TrialSpec> specs;
    specs.reserve(static_cast<std::size_t>(trials));
    for (int t = 0; t < trials; ++t) {
      bench::TrialSpec spec;
      spec.topo = topo::make_random_tree(n, rng);
      spec.members.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        spec.members[i] = static_cast<net::NodeId>(i);
      }
      spec.source = spec.members[rng.index(n)];
      net::Routing routing(spec.topo);
      spec.congested = harness::choose_congested_link(routing, spec.source,
                                                      spec.members, rng);
      spec.config = bench::paper_sim_config(paper_fixed_params(n));
      spec.seed = rng.next_u64();
      specs.push_back(std::move(spec));
    }
    perf.add_replications(specs.size());
    bench::PanelStats stats;
    for (const auto& r : bench::run_trials(std::move(specs), runner)) {
      stats.add(r);
    }
    table.add_row({util::Table::num(n),
                   bench::quartile_cell(stats.requests),
                   bench::quartile_cell(stats.repairs),
                   bench::quartile_cell(stats.delay_rtt),
                   util::Table::num(stats.delay_rtt.mean(), 2)});
  }
  table.print(std::cout);
  std::cout << "\nPaper check: medians ~1 request, ~1 repair at all sizes;\n"
               "last-member delay ~<2 RTT (unicast TCP-style recovery ~2).\n";
  perf.finish();
  return 0;
}
