// Ablation: parity-based local repair (the FEC direction of Sec. VII-B).
//
// A 20-member tree session streams ADUs through a lossy link.  Without
// parity, every loss costs a request + repair round (control traffic and a
// recovery delay of a couple RTT).  With one parity ADU per k data ADUs,
// isolated losses are rebuilt locally: control traffic drops sharply at the
// cost of 1/k extra data bandwidth.
#include <memory>

#include "common.h"
#include "srm/parity.h"

int main(int argc, char** argv) {
  using namespace srm;
  const util::Flags flags(argc, argv);
  const std::uint64_t seed = flags.get_seed(42);
  const int adus = static_cast<int>(flags.get_int("adus", 200));
  const double loss = flags.get_double("loss", 0.1);

  bench::print_header(
      "Ablation: parity (FEC) local repair vs pure request/repair", seed,
      std::to_string(adus) + " ADUs through a link with " +
          util::Table::num(loss * 100, 0) + "% data loss; degree-4 tree, "
          "20 members");

  util::Table table({"k (block)", "requests", "repairs", "reconstructions",
                     "data+parity sent", "complete"});

  for (int k : {0, 2, 4, 8}) {  // 0 = no parity
    util::Rng rng(seed);
    auto topo = topo::make_bounded_degree_tree(60, 4);
    auto members = harness::choose_members(60, 20, rng);
    SrmConfig cfg = bench::paper_sim_config(paper_fixed_params(20));
    harness::SimSession session(std::move(topo), members,
                                {cfg, seed, /*group=*/1});
    const net::NodeId source = members[0];
    SrmAgent& tx_agent = session.agent_at(source);

    std::vector<std::unique_ptr<parity::ParitySession>> sessions;
    parity::ParitySession* tx = nullptr;
    if (k > 0) {
      for (net::NodeId m : members) {
        sessions.push_back(std::make_unique<parity::ParitySession>(
            session.agent_at(m), static_cast<std::size_t>(k)));
        if (m == source) tx = sessions.back().get();
      }
    }

    // Lossy first hop below the source: everyone downstream shares losses.
    const auto congested = harness::link_adjacent_to_source(
        session.network().routing(), source, members);
    auto drop = std::make_shared<net::RandomDrop>(
        loss, seed ^ 0xF00D, [](const net::Packet& p) {
          return dynamic_cast<const DataMessage*>(p.payload.get()) != nullptr;
        });
    drop->restrict_to(congested.from, congested.to);
    session.network().set_drop_policy(drop);

    std::uint64_t requests = 0, repairs = 0, data_sent = 0;
    session.network().set_send_observer(
        [&](net::NodeId, const net::Packet& p) {
          if (dynamic_cast<const RequestMessage*>(p.payload.get())) {
            ++requests;
          } else if (dynamic_cast<const RepairMessage*>(p.payload.get())) {
            ++repairs;
          } else if (dynamic_cast<const DataMessage*>(p.payload.get())) {
            ++data_sent;
          }
        });

    // A continuous stream: one ADU per time unit.  Parity only pays off
    // when it arrives before the request timers of the loss it covers
    // (request timers sit at ~C1*d >= several time units).
    const PageId page{static_cast<SourceId>(source), 0};
    session.for_each_agent([&](SrmAgent& a) { a.set_current_page(page); });
    for (int i = 0; i < adus; ++i) {
      session.queue().schedule_after(static_cast<double>(i), [&, i] {
        const Payload payload{static_cast<uint8_t>(i & 0xFF)};
        if (tx != nullptr) {
          tx->send(page, payload);
        } else {
          tx_agent.send_data(page, payload);
        }
      });
    }
    session.queue().run();
    // Tail losses (last block has no trailing traffic): session messages.
    for (int round = 0; round < 3; ++round) {
      session.for_each_agent([&](SrmAgent& a) {
        a.send_session_message();
        session.queue().run();
      });
    }

    std::uint64_t reconstructions = 0;
    for (const auto& s : sessions) {
      if (s.get() != tx) reconstructions += s->stats().reconstructions;
    }
    bool complete = true;
    const SeqNo per_block = k > 0 ? static_cast<SeqNo>(k + 1) : 1;
    const SeqNo total_seqs =
        k > 0 ? static_cast<SeqNo>(adus) / k * per_block +
                    static_cast<SeqNo>(adus) % static_cast<SeqNo>(k)
              : static_cast<SeqNo>(adus);
    for (net::NodeId m : members) {
      for (SeqNo q = 0; q < total_seqs; ++q) {
        if (!session.agent_at(m).has_data(DataName{
                static_cast<SourceId>(source), page, q})) {
          complete = false;
        }
      }
    }

    table.add_row({k == 0 ? "none" : util::Table::num(std::size_t(k)),
                   util::Table::num(requests), util::Table::num(repairs),
                   util::Table::num(reconstructions),
                   util::Table::num(data_sent),
                   complete ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\nExpected: with parity enabled, reconstructions replace a "
               "large share of the\nrequest/repair rounds (most losses in a "
               "block are isolated at 10% loss), at\nthe cost of 1/k extra "
               "transmissions.\n";
  return 0;
}
