// Shared scenario for Figures 12/13: a bounded-degree tree of 1000 nodes
// (degree 4) with a 50-member session and a congested link chosen, as in
// the paper, to produce a large number of duplicate requests under the
// non-adaptive algorithm ("From the simulation set in Fig. 4, we chose a
// network topology, session membership, and drop scenario that resulted in
// a large number of duplicate requests").  The search is deterministic
// given the seed.
#pragma once

#include "common.h"

namespace srm::bench {

struct AdaptiveScenario {
  std::vector<net::NodeId> members;
  net::NodeId source;
  harness::DirectedLink congested;
};

// Scans candidate scenarios under fixed timers and returns the first whose
// single-round request count reaches `min_requests`.
inline AdaptiveScenario find_duplicate_heavy_scenario(std::size_t nodes,
                                                      std::size_t g,
                                                      std::uint64_t seed,
                                                      double min_requests = 4) {
  util::Rng rng(seed);
  for (int attempt = 0; attempt < 200; ++attempt) {
    AdaptiveScenario sc;
    sc.members = harness::choose_members(nodes, g, rng);
    sc.source = sc.members[rng.index(g)];
    auto topo = topo::make_bounded_degree_tree(nodes, 4);
    net::Routing routing(topo);
    sc.congested =
        harness::choose_congested_link(routing, sc.source, sc.members, rng);

    // Probe with a couple of rounds of the fixed-parameter algorithm.
    TrialSpec spec;
    spec.topo = std::move(topo);
    spec.members = sc.members;
    spec.source = sc.source;
    spec.congested = sc.congested;
    spec.config = paper_sim_config(paper_fixed_params(g));
    spec.seed = rng.next_u64();
    const auto r = run_trial(std::move(spec));
    if (static_cast<double>(r.requests) >= min_requests) return sc;
  }
  throw std::runtime_error("no duplicate-heavy scenario found");
}

}  // namespace srm::bench
