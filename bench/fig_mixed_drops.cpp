// Mixed drop locations and sources (Sec. VII-A): "In actual multicast
// sessions, successive packet losses are not necessarily from the same
// source or on the same network link.  Simulations in [12] show that in
// this case, the adaptive timer algorithms tune themselves to give good
// average performance for the range of packet drops encountered."
//
// Each round picks a fresh (source, congested link) pair from a pool; the
// adaptive session must still end up with fewer duplicates on average than
// the fixed-parameter session, though it cannot specialize to one failure.
#include "common.h"

int main(int argc, char** argv) {
  using namespace srm;
  const util::Flags flags(argc, argv);
  const std::uint64_t seed = flags.get_seed(42);
  const int rounds = static_cast<int>(flags.get_int("rounds", 120));
  const std::size_t nodes = 1000, g = 50;

  bench::print_header(
      "Adaptive algorithm under mixed drop locations/sources", seed,
      "tree 1000/deg4, G=50; every round draws a random (source, congested "
      "link); " + std::to_string(rounds) + " rounds");

  util::Rng rng(seed);
  auto members = harness::choose_members(nodes, g, rng);

  // A pool of (source, link) failure scenarios shared by both sessions.
  struct Failure {
    net::NodeId source;
    harness::DirectedLink link;
  };
  // As with Fig. 12/13, failures are drawn from scenarios that actually
  // produce duplicates under fixed timers (losses nobody duplicates on need
  // no tuning).  Probe candidates with a throwaway fixed-parameter session.
  std::vector<Failure> pool;
  {
    auto topo = topo::make_bounded_degree_tree(nodes, 4);
    net::Routing routing(topo);
    int attempts = 0;
    while (pool.size() < 8 && ++attempts < 400) {
      const net::NodeId source = members[rng.index(g)];
      const auto link =
          harness::choose_congested_link(routing, source, members, rng);
      SrmConfig probe_cfg = bench::paper_sim_config(paper_fixed_params(g));
      harness::SimSession probe(topo::make_bounded_degree_tree(nodes, 4),
                                members, {probe_cfg, rng.next_u64(), 1});
      harness::RoundSpec round;
      round.source_node = source;
      round.congested = link;
      round.page = PageId{static_cast<SourceId>(source), 0};
      if (harness::run_loss_round(probe, round, 0).requests >= 4) {
        pool.push_back(Failure{source, link});
      }
    }
  }

  auto run = [&](bool adaptive) {
    SrmConfig cfg = bench::paper_sim_config(paper_fixed_params(g));
    cfg.adaptive.enabled = adaptive;
    harness::SimSession session(topo::make_bounded_degree_tree(nodes, 4),
                                members, {cfg, seed, 1});
    util::Rng pick(seed ^ 0x33);
    // Sequence numbers advance per source page; track each separately.
    std::unordered_map<net::NodeId, SeqNo> next;
    util::Samples early, late;
    for (int r = 0; r < rounds; ++r) {
      const Failure& f = pool[pick.index(pool.size())];
      harness::RoundSpec round;
      round.source_node = f.source;
      round.congested = f.link;
      round.page = PageId{static_cast<SourceId>(f.source), 0};
      SeqNo& q = next[f.source];
      const auto res = harness::run_loss_round(session, round, q);
      q += 2;
      const double control =
          static_cast<double>(res.requests + res.repairs);
      (r < rounds / 3 ? early : late).add(control);
    }
    return std::make_pair(early.mean(), late.mean());
  };

  const auto [fixed_early, fixed_late] = run(false);
  const auto [adapt_early, adapt_late] = run(true);

  util::Table t({"scheme", "control msgs/loss (early third)",
                 "control msgs/loss (late third)"});
  t.add_row({"fixed", util::Table::num(fixed_early, 2),
             util::Table::num(fixed_late, 2)});
  t.add_row({"adaptive", util::Table::num(adapt_early, 2),
             util::Table::num(adapt_late, 2)});
  t.print(std::cout);
  std::cout << "\nPaper check: with mixed failures the adaptive session "
               "converges to average\nsettings that beat fixed parameters, "
               "even without specializing to one link.\n";
  return 0;
}
