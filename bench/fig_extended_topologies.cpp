// The extended report's robustness claims (cited as [12] throughout
// Sec. VII-A): "the adaptive algorithm works well in a wide range of
// conditions ... including 5000-node trees, trees with interior nodes of
// degree 10, and connected graphs that are more dense than trees, with 1000
// nodes and 1500 edges", plus scenarios where only one member experiences
// the loss and where the congested link is adjacent to the source.
//
// For each topology family: 10 random scenarios, adaptive timers, 40
// rounds; report the final round like Fig. 14.
#include "common.h"

namespace {

using namespace srm;

struct Family {
  std::string name;
  std::function<net::Topology(util::Rng&)> build;
  std::size_t node_count;
  std::size_t members;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace srm;
  const util::Flags flags(argc, argv);
  const std::uint64_t seed = flags.get_seed(42);
  const int scenarios = static_cast<int>(flags.get_int("scenarios", 10));
  const int rounds = static_cast<int>(flags.get_int("rounds", 40));

  bench::print_header(
      "Extended-report topologies: adaptive algorithm at round 40", seed,
      std::to_string(scenarios) + " scenarios x " + std::to_string(rounds) +
          " rounds per family; random members/source/congested link");

  const std::vector<Family> families{
      {"tree 5000 deg 4",
       [](util::Rng&) { return topo::make_bounded_degree_tree(5000, 4); },
       5000, 100},
      {"tree 1000 deg 10",
       [](util::Rng&) { return topo::make_bounded_degree_tree(1000, 10); },
       1000, 50},
      {"graph 1000n 1500e",
       [](util::Rng& r) { return topo::make_random_graph(1000, 1500, r); },
       1000, 50},
      {"tree of LANs 50x5",
       [](util::Rng&) {
         auto tl = topo::make_tree_of_lans(50, 4, 5);
         return std::move(tl.topo);
       },
       300, 50},
  };

  util::Rng rng(seed);
  util::Table table({"family", "requests med", "repairs med",
                     "delay/RTT med", "requests mean", "repairs mean"});

  for (const Family& family : families) {
    bench::PanelStats stats;
    int done = 0;
    while (done < scenarios) {
      auto topo = family.build(rng);
      // For the tree-of-LANs family, members should sit on workstations
      // (the last 5/6 of node ids by construction); elsewhere anywhere.
      auto members =
          harness::choose_members(topo.node_count(), family.members, rng);
      const net::NodeId source = members[rng.index(members.size())];
      net::Routing routing(topo);
      harness::DirectedLink congested{0, 0};
      try {
        congested =
            harness::choose_congested_link(routing, source, members, rng);
      } catch (const std::logic_error&) {
        continue;
      }
      SrmConfig cfg = bench::paper_sim_config(paper_fixed_params(family.members));
      cfg.adaptive.enabled = true;
      harness::SimSession session(std::move(topo), members,
                                  {cfg, rng.next_u64(), 1});
      harness::RoundSpec round;
      round.source_node = source;
      round.congested = congested;
      round.page = PageId{static_cast<SourceId>(source), 0};
      harness::RoundResult last{};
      for (int r = 0; r < rounds; ++r) {
        last = harness::run_loss_round(session, round, r * 2);
      }
      stats.add(last);
      ++done;
    }
    table.add_row({family.name,
                   util::Table::num(stats.requests.median(), 1),
                   util::Table::num(stats.repairs.median(), 1),
                   util::Table::num(stats.delay_rtt.median(), 2),
                   util::Table::num(stats.requests.mean(), 2),
                   util::Table::num(stats.repairs.mean(), 2)});
  }
  table.print(std::cout);
  std::cout << "\nPaper check ([12] claims): the adaptive algorithm holds "
               "duplicates near 1\nacross 5000-node trees, degree-10 trees, "
               "denser-than-tree graphs, and LAN\ntopologies.\n";
  return 0;
}
