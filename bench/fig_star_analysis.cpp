// Section IV-B: probabilistic suppression on a star.  All G-1 receivers
// detect the loss simultaneously at distance 2 from the source, so only the
// randomized timer window (width C2 * d) differentiates them.  The expected
// number of requests is 1 + (G-2) * 2 / (C2 * d) (the timers that expire
// within one leaf-to-leaf propagation time of the first), verified here by
// simulation for several G and C2, including the C2 = sqrt(G) operating
// point the paper highlights.
#include <cmath>

#include "common.h"

int main(int argc, char** argv) {
  using namespace srm;
  const util::Flags flags(argc, argv);
  const std::uint64_t seed = flags.get_seed(42);
  const int trials = static_cast<int>(flags.get_int("trials", 100));

  bench::print_header("Section IV-B: star, probabilistic suppression", seed,
                      "C1=0; drop adjacent to the source; " +
                          std::to_string(trials) + " trials per point");

  util::Rng rng(seed);
  util::Table table({"G", "C2", "E[burst] analysis", "burst sim mean",
                     "sim/analysis", "total sim mean"});

  // The analysis counts the timers that expire within one leaf-to-leaf
  // propagation time (2 units) of the first — the initial burst.  The full
  // protocol additionally re-fires backed-off timers when the repair is
  // slow, reported as "total" for context.
  const double d = 2.0;
  for (std::size_t g : {25u, 50u, 100u, 200u}) {
    const double gd = static_cast<double>(g);
    const std::vector<double> c2s{1.0, std::sqrt(gd), gd / 4.0, gd};
    for (double c2 : c2s) {
      util::Samples burst, total;
      for (int t = 0; t < trials; ++t) {
        auto star = topo::make_star(g);
        bench::TrialSpec spec;
        spec.source = star.leaves[0];
        spec.congested = harness::DirectedLink{star.leaves[0], star.center};
        spec.members = star.leaves;
        spec.topo = std::move(star.topo);
        spec.config.timers = TimerParams{0.0, c2, 1.0, 10.0};
        spec.seed = rng.next_u64();
        const auto r = bench::run_trial(std::move(spec));
        burst.add(static_cast<double>(r.requests_within(d)));
        total.add(static_cast<double>(r.requests));
      }
      const double expected =
          std::min(gd - 1.0, 1.0 + (gd - 2.0) * 2.0 / (c2 * d));
      table.add_row({util::Table::num(g), util::Table::num(c2, 1),
                     util::Table::num(expected, 2),
                     util::Table::num(burst.mean(), 2),
                     util::Table::num(burst.mean() / expected, 2),
                     util::Table::num(total.mean(), 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper check: the simulated burst tracks the 1 + (G-2)/C2 "
               "analysis (ratio ~1);\nC2 ~ sqrt(G) balances duplicates "
               "against delay.  With C1=0 the backed-off\ntimers restart "
               "near zero, so the protocol total exceeds the burst.\n";
  return 0;
}
