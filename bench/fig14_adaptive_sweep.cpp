// Figure 14: the adaptive algorithm across the same scenario family as
// Figure 4 (1000-node degree-4 tree, random members/source/congested link),
// reporting the 40th loss-recovery round of each scenario.  Paper shape:
// requests AND repairs controlled (~1-2) across all session sizes, unlike
// Fig. 4's fixed-parameter repairs.
#include "common.h"

int main(int argc, char** argv) {
  using namespace srm;
  const util::Flags flags(argc, argv);
  const std::uint64_t seed = flags.get_seed(42);
  const int trials = static_cast<int>(flags.get_int("trials", 20));
  const int rounds = static_cast<int>(flags.get_int("rounds", 40));
  const std::size_t nodes = 1000;

  bench::print_header(
      "Figure 14: adaptive algorithm at round 40, Fig. 4 scenario family",
      seed,
      "tree 1000/deg4, adaptive timers (backoff x3); per scenario " +
          std::to_string(rounds) + " rounds, report the last; " +
          std::to_string(trials) + " scenarios per size");

  util::Rng rng(seed);
  util::Table table({"G", "requests med [q1,q3]", "repairs med [q1,q3]",
                     "delay/RTT med [q1,q3]", "requests mean",
                     "repairs mean"});

  for (std::size_t g = 10; g <= 100; g += 10) {
    bench::PanelStats stats;
    for (int t = 0; t < trials; ++t) {
      auto members = harness::choose_members(nodes, g, rng);
      const net::NodeId source = members[rng.index(g)];
      auto topo = topo::make_bounded_degree_tree(nodes, 4);
      net::Routing routing(topo);
      const auto congested =
          harness::choose_congested_link(routing, source, members, rng);

      SrmConfig cfg;
      cfg.timers = paper_fixed_params(g);
      cfg.adaptive.enabled = true;
      cfg.backoff_factor = 3.0;
      harness::SimSession session(std::move(topo), members,
                                  {cfg, rng.next_u64(), 1});
      harness::RoundSpec round;
      round.source_node = source;
      round.congested = congested;
      round.page = PageId{static_cast<SourceId>(source), 0};
      harness::RoundResult last{};
      for (int r = 0; r < rounds; ++r) {
        last = harness::run_loss_round(session, round, r * 2);
      }
      stats.add(last);
    }
    table.add_row({util::Table::num(g),
                   bench::quartile_cell(stats.requests),
                   bench::quartile_cell(stats.repairs),
                   bench::quartile_cell(stats.delay_rtt),
                   util::Table::num(stats.requests.mean(), 2),
                   util::Table::num(stats.repairs.mean(), 2)});
  }
  table.print(std::cout);
  std::cout << "\nPaper check: \"the adaptive algorithm is effective in "
               "controlling the number\nof duplicates over a range of "
               "scenarios\" — compare the repair counts of fig4.\n";
  return 0;
}
