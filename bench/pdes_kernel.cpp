// pdes_kernel — throughput bench for the conservative parallel (PDES)
// kernel: one giant scenario (bounded-degree tree, hundreds of members,
// several concurrent sources, scripted losses on every source's tree) run
// to completion on the sequential kernel and then on the region-partitioned
// kernel at increasing worker counts.
//
// Runs two panels: the scripted-loss scenario ("pdes_kernel" section) and
// the same scenario with a keyed Gilbert-Elliott chain in the fault policy
// slot ("pdes_stochastic" section) so every hop performs stochastic draws —
// the load profile the counter-based RNG keying exists for.  Throughput
// keys (*_per_second, speedup*) are machine-dependent and exempt from the
// check_bench gate; the deterministic keys (events_total,
// virtual_makespan_us, stochastic_drops_total) must not drift, because the
// parallel kernel's whole claim is that the event order is equivalent to
// the sequential kernel's.
//
// --pdes-verify additionally diffs the aggregate network statistics and
// final virtual clock of every parallel run against the sequential run and
// exits non-zero on any mismatch.
//
// Flags:
//   --nodes=N          topology size                      [1500]
//   --members=G        session size                       [300]
//   --sources=S        concurrent sources                 [8]
//   --packets=P        data packets per source            [40]
//   --kernel-regions=R region count (0 = auto)            [0]
//   --max-threads=T    largest worker count measured      [4]
//   --pdes-verify      fail on any sequential/parallel stat mismatch
//   --bench-json=PATH  perf JSON (empty = disable)        [BENCH_kernel.json]
//   --seed=K           RNG seed                           [7]
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common.h"
#include "net/drop_policy.h"
#include "srm/messages.h"

namespace {

using namespace srm;

struct RunOutcome {
  std::size_t events = 0;
  double virtual_end = 0.0;
  double wall_seconds = 0.0;
  net::NetworkStats stats;
  std::uint32_t regions = 1;
  double lookahead = 0.0;
};

struct Scenario {
  net::Topology topo;
  std::vector<net::NodeId> members;
  std::vector<net::NodeId> sources;
  SrmConfig config;
  std::uint64_t seed = 7;
  std::size_t packets = 40;
  std::uint32_t kernel_regions = 0;
  // Adds a keyed Gilbert-Elliott chain in the fault policy slot on top of
  // the scripted drops: every hop of every walk performs stochastic draws,
  // which is the load profile the counter-based RNG keying exists for.
  bool stochastic = false;
};

// Runs the scenario to completion on one kernel configuration.
// kernel_threads == 0 is the sequential reference.  Every RNG draw that
// shapes the scenario (member placement, congested links) happens in the
// caller, identically for every configuration.
RunOutcome run_scenario(const Scenario& sc, unsigned kernel_threads) {
  harness::SimSession::Options opts{sc.config, sc.seed, /*group=*/1};
  opts.kernel_threads = kernel_threads;
  opts.kernel_regions = sc.kernel_regions;
  harness::SimSession session(net::Topology(sc.topo), sc.members, opts);

  // One scripted congested link per source, dropping every 4th data packet
  // of that source once.  The budget never binds (max_drops is huge), so
  // the drop set is a pure function of the packet stream and stays
  // deterministic under concurrent region walks.
  auto drops = std::make_shared<net::CompositeDrop>();
  util::Rng pick(sc.seed * 2 + 1);
  for (net::NodeId src : sc.sources) {
    const auto congested = harness::choose_congested_link(
        session.network().routing(), src, sc.members, pick);
    const auto id = static_cast<SourceId>(src);
    drops->add(std::make_shared<net::ScriptedLinkDrop>(
        congested.from, congested.to,
        [id](const net::Packet& p) {
          const auto* d = dynamic_cast<const DataMessage*>(p.payload.get());
          return d != nullptr && d->name().page.creator == id &&
                 d->name().seq % 4 == 0;
        },
        /*max_drops=*/std::size_t{1} << 30));
  }
  session.network().set_drop_policy(drops);
  if (sc.stochastic) {
    net::GilbertElliottDrop::Params ge;
    ge.p_good_bad = 0.02;  // rare, short bursts: recovery still terminates
    ge.p_bad_good = 0.5;
    session.network().set_fault_drop_policy(
        std::make_shared<net::GilbertElliottDrop>(ge, sc.seed ^ 0x6E5EEDull));
  }

  // Staggered bursts: each source sends `packets` data packets 250 ms
  // apart, sources offset by 40 ms, all scheduled up front on the control
  // queue.
  for (std::size_t s = 0; s < sc.sources.size(); ++s) {
    SrmAgent& agent = session.agent_at(sc.sources[s]);
    for (std::size_t i = 0; i < sc.packets; ++i) {
      const double when =
          1.0 + static_cast<double>(s) * 0.04 + static_cast<double>(i) * 0.25;
      session.queue().schedule_at(when, [&agent, s] {
        agent.send_data(PageId{agent.id(), 0}, Payload{std::uint8_t(s)});
      });
    }
  }

  const auto start = std::chrono::steady_clock::now();
  RunOutcome out;
  out.events = session.run();
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  out.virtual_end = session.now();
  out.stats = session.network_stats();
  out.regions = session.region_map().count;
  out.lookahead = session.region_map().lookahead;
  session.network().set_drop_policy(nullptr);
  if (sc.stochastic) session.network().set_fault_drop_policy(nullptr);
  return out;
}

// Exact comparison of everything that must be event-order-equivalent.
std::vector<std::string> diff_outcomes(const RunOutcome& seq,
                                       const RunOutcome& par,
                                       unsigned threads) {
  std::vector<std::string> diffs;
  const auto diff_u64 = [&](const char* what, std::uint64_t a,
                            std::uint64_t b) {
    if (a != b) {
      diffs.push_back(std::string(what) + ": sequential " + std::to_string(a) +
                      " vs " + std::to_string(threads) + "-thread " +
                      std::to_string(b));
    }
  };
  diff_u64("multicasts", seq.stats.multicasts_sent, par.stats.multicasts_sent);
  diff_u64("unicasts", seq.stats.unicasts_sent, par.stats.unicasts_sent);
  diff_u64("link transmissions", seq.stats.link_transmissions,
           par.stats.link_transmissions);
  diff_u64("deliveries", seq.stats.deliveries, par.stats.deliveries);
  diff_u64("drops", seq.stats.drops, par.stats.drops);
  diff_u64("ttl prunes", seq.stats.ttl_prunes, par.stats.ttl_prunes);
  if (seq.virtual_end != par.virtual_end) {
    diffs.push_back("virtual end time: sequential " +
                    std::to_string(seq.virtual_end) + " vs " +
                    std::to_string(threads) + "-thread " +
                    std::to_string(par.virtual_end));
  }
  return diffs;
}

// One full panel: sequential reference, thread sweep, equivalence diffs,
// perf-JSON section.  Returns false on any sequential/parallel mismatch.
bool run_panel(const Scenario& sc, unsigned max_threads,
               const std::string& json_path, const std::string& section) {
  const RunOutcome seq = run_scenario(sc, 0);
  std::cout << "sequential: " << seq.events << " events in "
            << util::Table::num(seq.wall_seconds, 3) << "s ("
            << util::Table::num(seq.events / seq.wall_seconds / 1e6, 2)
            << " M events/s), virtual end "
            << util::Table::num(seq.virtual_end, 1) << "s, "
            << seq.stats.drops << " drops\n";

  util::Table table({"kernel threads", "regions", "events", "wall (s)",
                     "events/s", "speedup vs seq"});
  util::PerfJson json(json_path, section);
  json.set("seq_events_per_second",
           static_cast<double>(seq.events) / seq.wall_seconds);

  bool ok = true;
  std::size_t pdes_events = 0;
  double virtual_end = 0.0;
  std::uint32_t regions = 1;
  for (unsigned t = 1; t <= max_threads; t *= 2) {
    const RunOutcome par = run_scenario(sc, t);
    table.add_row({util::Table::num(static_cast<std::size_t>(t)),
                   util::Table::num(static_cast<std::size_t>(par.regions)),
                   util::Table::num(par.events),
                   util::Table::num(par.wall_seconds, 3),
                   util::Table::num(par.events / par.wall_seconds / 1e6, 2) +
                       " M",
                   util::Table::num(seq.wall_seconds / par.wall_seconds, 2) +
                       "x"});
    json.set("threads" + std::to_string(t) + "_events_per_second",
             static_cast<double>(par.events) / par.wall_seconds);
    if (t == max_threads && max_threads >= 4) {
      json.set("speedup_" + std::to_string(t) + "t",
               seq.wall_seconds / par.wall_seconds);
    }
    // The event count and virtual clock must agree across thread counts
    // (the region map is fixed); the network stats must match the
    // sequential run exactly.
    if (pdes_events == 0) {
      pdes_events = par.events;
      virtual_end = par.virtual_end;
      regions = par.regions;
    } else if (par.events != pdes_events || par.virtual_end != virtual_end) {
      std::cout << "MISMATCH across thread counts: " << par.events << " vs "
                << pdes_events << " events\n";
      ok = false;
    }
    const auto diffs = diff_outcomes(seq, par, t);
    for (const std::string& d : diffs) std::cout << "  stat " << d << "\n";
    if (!diffs.empty()) ok = false;
  }
  table.print(std::cout);

  json.set("events_total", static_cast<double>(pdes_events));
  json.set("virtual_makespan_us", virtual_end * 1e6);
  json.set("regions", static_cast<double>(regions));
  if (sc.stochastic) {
    // Keyed draws make the drop count deterministic across kernels and
    // thread counts; recorded (like events_total) for mechanical diffing.
    json.set("stochastic_drops_total", static_cast<double>(seq.stats.drops));
  }
  if (!json_path.empty()) {
    json.save();
    std::cout << "\n[perf] " << json_path << " updated (" << section
              << " section)\n";
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace srm;
  const util::Flags flags(argc, argv);
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 1500));
  const auto member_count =
      static_cast<std::size_t>(flags.get_int("members", 300));
  const auto source_count =
      static_cast<std::size_t>(flags.get_int("sources", 8));
  const auto packets = static_cast<std::size_t>(flags.get_int("packets", 40));
  const auto kernel_regions =
      static_cast<std::uint32_t>(flags.get_int("kernel-regions", 0));
  const auto max_threads =
      static_cast<unsigned>(flags.get_int("max-threads", 4));
  const bool verify = flags.get_bool("pdes-verify", false);
  const std::uint64_t seed = flags.get_seed(7);

  Scenario sc;
  sc.seed = seed;
  sc.packets = packets;
  sc.kernel_regions = kernel_regions;
  sc.config = bench::paper_sim_config(paper_fixed_params(member_count));

  util::Rng rng(seed);
  sc.topo = topo::make_bounded_degree_tree(nodes, 4);
  std::vector<net::NodeId> all(nodes);
  for (std::size_t i = 0; i < nodes; ++i) all[i] = static_cast<net::NodeId>(i);
  rng.shuffle(all);
  sc.members.assign(all.begin(), all.begin() + static_cast<long>(member_count));
  std::sort(sc.members.begin(), sc.members.end());
  sc.sources.assign(sc.members.begin(),
                    sc.members.begin() + static_cast<long>(source_count));

  bench::print_header("pdes_kernel: parallel kernel throughput", seed,
                      std::to_string(nodes) + " nodes / " +
                          std::to_string(member_count) + " members / " +
                          std::to_string(source_count) + " sources x " +
                          std::to_string(packets) + " packets");

  const std::string path = flags.get_string("bench-json", "BENCH_kernel.json");
  bool ok = run_panel(sc, max_threads, path, "pdes_kernel");

  // Same scenario with a keyed Gilbert-Elliott chain consulted on every
  // hop: stochastic loss on all cores.  Separate section so the regression
  // gate tracks the keyed-draw overhead independently.
  std::cout << "\npdes_stochastic: scripted drops + keyed Gilbert-Elliott "
               "background loss\n";
  Scenario stoch = std::move(sc);
  stoch.stochastic = true;
  ok = run_panel(stoch, max_threads, path, "pdes_stochastic") && ok;

  if (verify) {
    std::cout << "pdes-verify: "
              << (ok ? "OK (all parallel runs match the sequential kernel)"
                     : "MISMATCH")
              << "\n";
    return ok ? 0 : 1;
  }
  if (!ok) std::cout << "warning: stat mismatch (run with --pdes-verify)\n";
  return 0;
}
