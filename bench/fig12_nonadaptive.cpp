// Figure 12: the NON-adaptive algorithm on a duplicate-heavy scenario.
// 10 runs of 100 loss-recovery rounds on the same topology/membership/drop;
// each run differs only in the RNG seed for the timer choices.  Per round:
// the number of requests and the (last-member) recovery delay.  With fixed
// timer parameters, round N looks like round 1 — duplicates never improve.
//
// The runs are independent replications (each owns its session and evolves
// its own 100 rounds), so they fan across --threads workers; per-round
// samples are merged in run order, making every thread count print the
// same numbers.
#include "adaptive_scenario.h"

int main(int argc, char** argv) {
  using namespace srm;
  const util::Flags flags(argc, argv);
  const std::uint64_t seed = flags.get_seed(42);
  const int runs = static_cast<int>(flags.get_int("runs", 10));
  const int rounds = static_cast<int>(flags.get_int("rounds", 100));
  const std::size_t nodes = 1000, g = 50;
  const harness::ReplicationRunner runner(bench::flag_threads(flags));
  bench::SweepPerf perf(flags, "fig12_nonadaptive", runner.threads());

  bench::print_header(
      "Figure 12: non-adaptive algorithm, duplicate-heavy scenario", seed,
      "tree 1000/deg4, G=50, fixed C1=C2=2, D1=D2=log10(G); " +
          std::to_string(runs) + " runs x " + std::to_string(rounds) +
          " rounds on one scenario; threads=" +
          std::to_string(runner.threads()));

  const auto sc = bench::find_duplicate_heavy_scenario(nodes, g, seed);

  struct RunSeries {
    std::vector<double> requests;
    std::vector<double> delay;
  };
  perf.add_replications(static_cast<std::size_t>(runs));
  const auto series = runner.map<RunSeries>(
      static_cast<std::size_t>(runs), [&](std::size_t run) {
        SrmConfig cfg = bench::paper_sim_config(paper_fixed_params(g));
        harness::SimSession session(
            topo::make_bounded_degree_tree(nodes, 4), sc.members,
            {cfg, seed + 1000 + static_cast<std::uint64_t>(run), 1});
        harness::RoundSpec round;
        round.source_node = sc.source;
        round.congested = sc.congested;
        round.page = PageId{static_cast<SourceId>(sc.source), 0};
        RunSeries out;
        out.requests.reserve(static_cast<std::size_t>(rounds));
        out.delay.reserve(static_cast<std::size_t>(rounds));
        for (int r = 0; r < rounds; ++r) {
          const auto res = harness::run_loss_round(session, round, r * 2);
          out.requests.push_back(static_cast<double>(res.requests));
          out.delay.push_back(res.last_member_delay_rtt);
        }
        return out;
      });

  // round -> samples across runs, merged in run order (thread-count
  // independent).
  std::vector<util::Samples> requests(rounds), delay(rounds);
  for (const RunSeries& s : series) {
    for (int r = 0; r < rounds; ++r) {
      requests[r].add(s.requests[r]);
      delay[r].add(s.delay[r]);
    }
  }

  util::Table table({"round", "requests med [q1,q3]", "delay/RTT med [q1,q3]"});
  for (int r = 0; r < rounds; r += (r < 10 ? 1 : 10)) {
    table.add_row({util::Table::num(static_cast<std::size_t>(r + 1)),
                   bench::quartile_cell(requests[r]),
                   bench::quartile_cell(delay[r])});
  }
  table.print(std::cout);

  double early = 0, late = 0;
  for (int r = 0; r < 10; ++r) early += requests[r].mean() / 10.0;
  for (int r = rounds - 10; r < rounds; ++r) late += requests[r].mean() / 10.0;
  std::cout << "\nmean requests, rounds 1-10:   " << util::Table::num(early, 2)
            << "\nmean requests, last 10:       " << util::Table::num(late, 2)
            << "\nPaper check: no improvement across rounds (only noise); "
               "compare fig13.\n";
  perf.finish();
  return 0;
}
