// google-benchmark microbenchmarks for the simulator substrate: event queue
// throughput, shortest-path tree computation, multicast fan-out, a complete
// loss-recovery round, distance-estimation updates, and the drawop codec.
// These guard the simulator's own performance (the figure sweeps run tens
// of thousands of rounds).
//
// The headline kernel numbers (ns/event, events/s, multicast deliveries/s,
// loss-round wall time) are also recorded into BENCH_kernel.json
// (--bench-json=PATH to relocate, --bench-json= to disable) so kernel
// performance can be compared across PRs; see EXPERIMENTS.md.
#include <benchmark/benchmark.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "util/perf_json.h"

#include "harness/loss_round.h"
#include "harness/session.h"
#include "net/network.h"
#include "net/routing.h"
#include "sim/event_queue.h"
#include "topo/builders.h"
#include "harness/scenario.h"
#include "srm/adaptive.h"
#include "srm/session.h"
#include "trace/trace.h"
#include "util/rng.h"
#include "wb/drawop.h"
#include "wb/page.h"

namespace {

using namespace srm;

// Cheapest possible sink: measures instrumentation cost, not storage cost.
class CountingSink : public trace::Sink {
 public:
  void on_event(const trace::Event&) override { ++count_; }
  std::size_t count() const { return count_; }

 private:
  std::size_t count_ = 0;
};

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    std::size_t fired = 0;
    for (std::size_t i = 0; i < n; ++i) {
      q.schedule_at(static_cast<double>(i % 97), [&fired] { ++fired; });
    }
    q.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
// The traced variant below must never report faster than this plain run:
// both get an explicit warm-up (first iterations pay slab allocation and
// cold caches, and benchmark registration order would otherwise hand that
// cost to whichever variant runs first) and a fixed measurement window so
// the pair is compared on equal footing.
BENCHMARK(BM_EventQueueScheduleRun)
    ->Arg(1000)
    ->Arg(100000)
    ->MinWarmUpTime(0.5)
    ->MinTime(2.0);

// Same loop as BM_EventQueueScheduleRun but with sim tracing ENABLED into a
// counting sink; the delta against the plain run is the per-event cost of
// emitting schedule + fire records.  (The plain run already measures the
// compiled-in-but-disabled path, which PR acceptance bounds at <3% of the
// committed baseline.)  Registered directly after the plain run so the pair
// executes back-to-back with identical allocator and cache history — with
// another benchmark in between, heap-layout luck can swing the comparison
// by more than the tracing cost itself.
void BM_EventQueueScheduleRunTraced(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  CountingSink sink;
  trace::Tracer tracer;
  tracer.set_sink(&sink);
  tracer.set_mask(static_cast<std::uint32_t>(trace::Category::kSim));
  for (auto _ : state) {
    sim::EventQueue q;
    q.set_tracer(&tracer);
    std::size_t fired = 0;
    for (std::size_t i = 0; i < n; ++i) {
      q.schedule_at(static_cast<double>(i % 97), [&fired] { ++fired; });
    }
    q.run();
    benchmark::DoNotOptimize(fired);
  }
  benchmark::DoNotOptimize(sink.count());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleRunTraced)
    ->Arg(100000)
    ->MinWarmUpTime(0.5)
    ->MinTime(2.0);

// SRM's suppressible timers make schedule/cancel/reschedule the kernel's
// second hot loop: this exercises slab + free-list reuse under churn.
void BM_EventQueueCancelChurn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    std::size_t fired = 0;
    std::vector<sim::EventHandle> handles(n);
    for (std::size_t i = 0; i < n; ++i) {
      handles[i] =
          q.schedule_at(static_cast<double>(i % 97), [&fired] { ++fired; });
    }
    // Suppress two out of three timers, then back them off (reschedule).
    for (std::size_t i = 0; i < n; ++i) {
      if (i % 3 != 0) handles[i].cancel();
      if (i % 3 == 1) {
        handles[i] =
            q.schedule_at(100.0 + static_cast<double>(i % 13), [&fired] {
              ++fired;
            });
      }
    }
    q.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueCancelChurn)->Arg(100000);

void BM_SptComputation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto topo = topo::make_bounded_degree_tree(n, 4);
  for (auto _ : state) {
    net::Routing routing(topo);
    benchmark::DoNotOptimize(routing.spt(0).dist.back());
  }
}
BENCHMARK(BM_SptComputation)->Arg(1000)->Arg(5000);

void BM_RandomTreeGeneration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  for (auto _ : state) {
    auto t = topo::make_random_tree(n, rng);
    benchmark::DoNotOptimize(t.link_count());
  }
}
BENCHMARK(BM_RandomTreeGeneration)->Arg(100)->Arg(1000);

void BM_MulticastDelivery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto topo = topo::make_bounded_degree_tree(n, 4);
  sim::EventQueue queue;
  net::MulticastNetwork net(queue, topo);

  class NullSink : public net::PacketSink {
   public:
    void on_receive(const net::Packet&, const net::DeliveryInfo&) override {}
  };
  std::vector<std::unique_ptr<NullSink>> sinks;
  for (net::NodeId v = 0; v < n; ++v) {
    sinks.push_back(std::make_unique<NullSink>());
    net.attach(v, sinks.back().get());
    net.join(1, v);
  }
  class Tiny : public net::Message {
   public:
    std::string describe() const override { return "tiny"; }
  };
  for (auto _ : state) {
    net::Packet p;
    p.group = 1;
    p.payload = std::make_shared<Tiny>();
    net.multicast(0, std::move(p));
    queue.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n - 1));
}
// Warm-up/measurement window matched with BM_MulticastDeliveryTraced, as
// with the event-queue pair above.
BENCHMARK(BM_MulticastDelivery)
    ->Arg(100)
    ->Arg(1000)
    ->MinWarmUpTime(0.5)
    ->MinTime(2.0);

// Multicast fan-out with net tracing ENABLED (send + per-member deliver
// records) into a counting sink.
void BM_MulticastDeliveryTraced(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto topo = topo::make_bounded_degree_tree(n, 4);
  sim::EventQueue queue;
  net::MulticastNetwork net(queue, topo);
  CountingSink sink;
  trace::Tracer tracer;
  tracer.set_sink(&sink);
  tracer.set_mask(static_cast<std::uint32_t>(trace::Category::kNet));
  net.set_tracer(&tracer);

  class NullSink : public net::PacketSink {
   public:
    void on_receive(const net::Packet&, const net::DeliveryInfo&) override {}
  };
  std::vector<std::unique_ptr<NullSink>> sinks;
  for (net::NodeId v = 0; v < n; ++v) {
    sinks.push_back(std::make_unique<NullSink>());
    net.attach(v, sinks.back().get());
    net.join(1, v);
  }
  class Tiny : public net::Message {
   public:
    std::string describe() const override { return "tiny"; }
  };
  for (auto _ : state) {
    net::Packet p;
    p.group = 1;
    p.payload = std::make_shared<Tiny>();
    net.multicast(0, std::move(p));
    queue.run();
  }
  benchmark::DoNotOptimize(sink.count());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n - 1));
}
BENCHMARK(BM_MulticastDeliveryTraced)
    ->Arg(1000)
    ->MinWarmUpTime(0.5)
    ->MinTime(2.0);

void BM_FullLossRecoveryRound(benchmark::State& state) {
  const auto g = static_cast<std::size_t>(state.range(0));
  util::Rng rng(11);
  auto members = harness::choose_members(1000, g, rng);
  SrmConfig cfg;
  cfg.timers = paper_fixed_params(g);
  harness::SimSession session(topo::make_bounded_degree_tree(1000, 4),
                              members, {cfg, 11, 1});
  const net::NodeId source = members[0];
  const auto congested = harness::choose_congested_link(
      session.network().routing(), source, members, rng);
  harness::RoundSpec round;
  round.source_node = source;
  round.congested = congested;
  round.page = PageId{static_cast<SourceId>(source), 0};
  SeqNo seq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        harness::run_loss_round(session, round, seq).requests);
    seq += 2;
  }
}
BENCHMARK(BM_FullLossRecoveryRound)->Arg(20)->Arg(100);

void BM_DistanceEstimatorExchange(benchmark::State& state) {
  sim::EventQueue q;
  sim::LocalClock clock(q, 0.0);
  DistanceEstimator est(clock);
  SessionMessage::Echoes echoes;
  echoes[1] = SessionMessage::Echo{0.0, 1.0};
  SourceId peer = 2;
  for (auto _ : state) {
    SessionMessage msg(peer, 0.0, {}, echoes);
    est.on_session_message(msg, 1);
    benchmark::DoNotOptimize(est.distance(peer));
    peer = 2 + (peer + 1) % 128;  // rotate through a realistic peer set
  }
}
BENCHMARK(BM_DistanceEstimatorExchange);

void BM_AdaptiveTunerRound(benchmark::State& state) {
  AdaptiveParams params;
  params.enabled = true;
  AdaptiveTuner tuner(params, {0.5, 2.0, 1.0, 200.0}, 2.0, 2.0);
  std::size_t dups = 0;
  for (auto _ : state) {
    tuner.end_period(dups++ % 3);
    tuner.record_delay(1.5);
    tuner.adapt_on_timer_set(dups % 2 == 0);
    benchmark::DoNotOptimize(tuner.width());
  }
}
BENCHMARK(BM_AdaptiveTunerRound);

void BM_PageVisibleOps(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  wb::Page page(PageId{1, 0});
  for (SeqNo q = 0; q < n; ++q) {
    wb::DrawOp op;
    op.type = wb::OpType::kLine;
    op.timestamp = static_cast<double>((q * 31) % 97);
    page.apply(DataName{1, PageId{1, 0}, q}, op);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(page.visible_ops().size());
  }
}
BENCHMARK(BM_PageVisibleOps)->Arg(100)->Arg(1000);

void BM_TtlReach(benchmark::State& state) {
  const auto topo = topo::make_bounded_degree_tree(1000, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness::ttl_reach(topo, 0, 8).size());
  }
}
BENCHMARK(BM_TtlReach);

void BM_DrawOpCodecRoundTrip(benchmark::State& state) {
  wb::DrawOp op;
  op.type = wb::OpType::kText;
  op.text = "the quick brown fox jumps over the lazy dog";
  op.timestamp = 123.456;
  for (auto _ : state) {
    const auto decoded = wb::decode(wb::encode(op));
    benchmark::DoNotOptimize(decoded->timestamp);
  }
}
BENCHMARK(BM_DrawOpCodecRoundTrip);

// Console output plus capture of the per-run numbers that feed
// BENCH_kernel.json.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  struct Captured {
    double real_ns_per_iteration = 0.0;
    double items_per_second = 0.0;
    std::int64_t arg = 0;
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Captured c;
      c.real_ns_per_iteration =
          run.iterations > 0
              ? run.real_accumulated_time * 1e9 /
                    static_cast<double>(run.iterations)
              : 0.0;
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) c.items_per_second = it->second;
      runs_[run.benchmark_name()] = c;
    }
    ConsoleReporter::ReportRuns(reports);
  }

  // ns per processed item (event/delivery) for `name/arg`; 0 if missing.
  double ns_per_item(const std::string& name, std::int64_t arg) const {
    const Captured* run = find(name + "/" + std::to_string(arg));
    if (run == nullptr || arg == 0) return 0.0;
    return run->real_ns_per_iteration / static_cast<double>(arg);
  }
  double items_per_second(const std::string& name, std::int64_t arg) const {
    const Captured* run = find(name + "/" + std::to_string(arg));
    return run == nullptr ? 0.0 : run->items_per_second;
  }
  double ns_per_iteration(const std::string& full_name) const {
    const Captured* run = find(full_name);
    return run == nullptr ? 0.0 : run->real_ns_per_iteration;
  }

 private:
  // Benchmarks registered with MinTime/MinWarmUpTime report under names
  // with "/min_time:..." style suffixes appended; accept either the exact
  // name or the name followed by such a suffix.
  const Captured* find(const std::string& prefix) const {
    const auto it = runs_.find(prefix);
    if (it != runs_.end()) return &it->second;
    for (const auto& [name, captured] : runs_) {
      if (name.size() > prefix.size() && name[prefix.size()] == '/' &&
          name.compare(0, prefix.size(), prefix) == 0) {
        return &captured;
      }
    }
    return nullptr;
  }

  std::map<std::string, Captured> runs_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_kernel.json";
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    constexpr const char* kFlag = "--bench-json=";
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      json_path = argv[i] + std::strlen(kFlag);
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }

  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  if (!json_path.empty()) {
    srm::util::PerfJson json(json_path, "micro_kernel");
    const double ns_per_event =
        reporter.ns_per_item("BM_EventQueueScheduleRun", 100000);
    if (ns_per_event > 0) {
      json.set("event_queue_ns_per_event", ns_per_event);
      json.set("event_queue_events_per_second",
               reporter.items_per_second("BM_EventQueueScheduleRun", 100000));
    }
    const double churn =
        reporter.items_per_second("BM_EventQueueCancelChurn", 100000);
    if (churn > 0) json.set("event_queue_cancel_churn_events_per_second", churn);
    const double deliveries =
        reporter.items_per_second("BM_MulticastDelivery", 1000);
    if (deliveries > 0) {
      json.set("multicast_deliveries_per_second", deliveries);
      json.set("multicast_ns_per_delivery",
               reporter.ns_per_item("BM_MulticastDelivery", 1000));
    }
    const double round_ns =
        reporter.ns_per_iteration("BM_FullLossRecoveryRound/100");
    if (round_ns > 0) json.set("loss_round_g100_us", round_ns / 1e3);
    // Enabled-tracing variants: the gap to the plain numbers above is the
    // cost of actually emitting records (the plain runs already pay the
    // compiled-in-but-disabled guard).
    const double traced_event =
        reporter.ns_per_item("BM_EventQueueScheduleRunTraced", 100000);
    if (traced_event > 0) {
      json.set("event_queue_traced_ns_per_event", traced_event);
    }
    const double traced_delivery =
        reporter.ns_per_item("BM_MulticastDeliveryTraced", 1000);
    if (traced_delivery > 0) {
      json.set("multicast_traced_ns_per_delivery", traced_delivery);
    }
    // A filtered run that captured nothing must not wipe recorded metrics.
    if (!json.empty()) json.save();
  }
  benchmark::Shutdown();
  return 0;
}
