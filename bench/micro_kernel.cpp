// google-benchmark microbenchmarks for the simulator substrate: event queue
// throughput, shortest-path tree computation, multicast fan-out, a complete
// loss-recovery round, distance-estimation updates, and the drawop codec.
// These guard the simulator's own performance (the figure sweeps run tens
// of thousands of rounds).
#include <benchmark/benchmark.h>

#include "harness/loss_round.h"
#include "harness/session.h"
#include "net/network.h"
#include "net/routing.h"
#include "sim/event_queue.h"
#include "topo/builders.h"
#include "harness/scenario.h"
#include "srm/adaptive.h"
#include "srm/session.h"
#include "util/rng.h"
#include "wb/drawop.h"
#include "wb/page.h"

namespace {

using namespace srm;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    std::size_t fired = 0;
    for (std::size_t i = 0; i < n; ++i) {
      q.schedule_at(static_cast<double>(i % 97), [&fired] { ++fired; });
    }
    q.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

void BM_SptComputation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto topo = topo::make_bounded_degree_tree(n, 4);
  for (auto _ : state) {
    net::Routing routing(topo);
    benchmark::DoNotOptimize(routing.spt(0).dist.back());
  }
}
BENCHMARK(BM_SptComputation)->Arg(1000)->Arg(5000);

void BM_RandomTreeGeneration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  for (auto _ : state) {
    auto t = topo::make_random_tree(n, rng);
    benchmark::DoNotOptimize(t.link_count());
  }
}
BENCHMARK(BM_RandomTreeGeneration)->Arg(100)->Arg(1000);

void BM_MulticastDelivery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto topo = topo::make_bounded_degree_tree(n, 4);
  sim::EventQueue queue;
  net::MulticastNetwork net(queue, topo);

  class NullSink : public net::PacketSink {
   public:
    void on_receive(const net::Packet&, const net::DeliveryInfo&) override {}
  };
  std::vector<std::unique_ptr<NullSink>> sinks;
  for (net::NodeId v = 0; v < n; ++v) {
    sinks.push_back(std::make_unique<NullSink>());
    net.attach(v, sinks.back().get());
    net.join(1, v);
  }
  class Tiny : public net::Message {
   public:
    std::string describe() const override { return "tiny"; }
  };
  for (auto _ : state) {
    net::Packet p;
    p.group = 1;
    p.payload = std::make_shared<Tiny>();
    net.multicast(0, std::move(p));
    queue.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n - 1));
}
BENCHMARK(BM_MulticastDelivery)->Arg(100)->Arg(1000);

void BM_FullLossRecoveryRound(benchmark::State& state) {
  const auto g = static_cast<std::size_t>(state.range(0));
  util::Rng rng(11);
  auto members = harness::choose_members(1000, g, rng);
  SrmConfig cfg;
  cfg.timers = paper_fixed_params(g);
  harness::SimSession session(topo::make_bounded_degree_tree(1000, 4),
                              members, {cfg, 11, 1});
  const net::NodeId source = members[0];
  const auto congested = harness::choose_congested_link(
      session.network().routing(), source, members, rng);
  harness::RoundSpec round;
  round.source_node = source;
  round.congested = congested;
  round.page = PageId{static_cast<SourceId>(source), 0};
  SeqNo seq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        harness::run_loss_round(session, round, seq).requests);
    seq += 2;
  }
}
BENCHMARK(BM_FullLossRecoveryRound)->Arg(20)->Arg(100);

void BM_DistanceEstimatorExchange(benchmark::State& state) {
  sim::EventQueue q;
  sim::LocalClock clock(q, 0.0);
  DistanceEstimator est(clock);
  std::map<SourceId, SessionMessage::Echo> echoes;
  echoes[1] = SessionMessage::Echo{0.0, 1.0};
  SourceId peer = 2;
  for (auto _ : state) {
    SessionMessage msg(peer, 0.0, {}, echoes);
    est.on_session_message(msg, 1);
    benchmark::DoNotOptimize(est.distance(peer));
    peer = 2 + (peer + 1) % 128;  // rotate through a realistic peer set
  }
}
BENCHMARK(BM_DistanceEstimatorExchange);

void BM_AdaptiveTunerRound(benchmark::State& state) {
  AdaptiveParams params;
  params.enabled = true;
  AdaptiveTuner tuner(params, {0.5, 2.0, 1.0, 200.0}, 2.0, 2.0);
  std::size_t dups = 0;
  for (auto _ : state) {
    tuner.end_period(dups++ % 3);
    tuner.record_delay(1.5);
    tuner.adapt_on_timer_set(dups % 2 == 0);
    benchmark::DoNotOptimize(tuner.width());
  }
}
BENCHMARK(BM_AdaptiveTunerRound);

void BM_PageVisibleOps(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  wb::Page page(PageId{1, 0});
  for (SeqNo q = 0; q < n; ++q) {
    wb::DrawOp op;
    op.type = wb::OpType::kLine;
    op.timestamp = static_cast<double>((q * 31) % 97);
    page.apply(DataName{1, PageId{1, 0}, q}, op);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(page.visible_ops().size());
  }
}
BENCHMARK(BM_PageVisibleOps)->Arg(100)->Arg(1000);

void BM_TtlReach(benchmark::State& state) {
  const auto topo = topo::make_bounded_degree_tree(1000, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness::ttl_reach(topo, 0, 8).size());
  }
}
BENCHMARK(BM_TtlReach);

void BM_DrawOpCodecRoundTrip(benchmark::State& state) {
  wb::DrawOp op;
  op.type = wb::OpType::kText;
  op.text = "the quick brown fox jumps over the lazy dog";
  op.timestamp = 123.456;
  for (auto _ : state) {
    const auto decoded = wb::decode(wb::encode(op));
    benchmark::DoNotOptimize(decoded->timestamp);
  }
}
BENCHMARK(BM_DrawOpCodecRoundTrip);

}  // namespace

BENCHMARK_MAIN();
