// Shared scaffolding for the figure benches: scenario construction exactly
// as Sec. V describes (fresh random topology + membership + source +
// congested link per trial), quartile aggregation, and table output that
// mirrors the series each figure plots.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "harness/loss_round.h"
#include "harness/replication.h"
#include "harness/scenario.h"
#include "harness/session.h"
#include "srm/config.h"
#include "topo/builders.h"
#include "util/flags.h"
#include "util/perf_json.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace srm::bench {

// The paper's simulator settings: Sec. VII-A, "In our simulations we use a
// multiplicative factor of 3 rather than 2" for the request-timer backoff —
// with x2, a requestor's backed-off timer (at 2*C1*d) can expire before the
// repair's ~(d + D1*d + d) round trip, injecting a spurious duplicate.
inline SrmConfig paper_sim_config(const TimerParams& timers) {
  SrmConfig cfg;
  cfg.timers = timers;
  cfg.backoff_factor = 3.0;
  return cfg;
}

// One figure trial: fresh world, one loss-recovery round.
struct TrialSpec {
  net::Topology topo;
  std::vector<net::NodeId> members;
  net::NodeId source;
  harness::DirectedLink congested;
  SrmConfig config;
  std::uint64_t seed = 1;
  // Per-session parallel-kernel knobs (0 = sequential kernel).  Region count
  // must stay a function of the topology, so set kernel_regions explicitly
  // when comparing runs across kernel_threads values.
  unsigned kernel_threads = 0;
  std::uint32_t kernel_regions = 0;
};

inline harness::RoundResult run_trial(TrialSpec spec) {
  harness::SimSession::Options opts{spec.config, spec.seed, /*group=*/1};
  opts.kernel_threads = spec.kernel_threads;
  opts.kernel_regions = spec.kernel_regions;
  harness::SimSession session(std::move(spec.topo), spec.members, opts);
  harness::RoundSpec round;
  round.source_node = spec.source;
  round.congested = spec.congested;
  round.page = PageId{static_cast<SourceId>(spec.source), 0};
  return harness::run_loss_round(session, round, /*seq=*/0);
}

// Aggregates the three panels of Figs. 3/4 across trials of one x-value.
struct PanelStats {
  util::Samples requests;
  util::Samples repairs;
  util::Samples delay_rtt;  // last member's recovery delay / its RTT

  void add(const harness::RoundResult& r) {
    requests.add(static_cast<double>(r.requests));
    repairs.add(static_cast<double>(r.repairs));
    delay_rtt.add(r.last_member_delay_rtt);
  }
};

inline std::string quartile_cell(const util::Samples& s, int precision = 2) {
  if (s.empty()) return "-";
  return util::Table::num(s.median(), precision) + " [" +
         util::Table::num(s.lower_quartile(), precision) + "," +
         util::Table::num(s.upper_quartile(), precision) + "]";
}

// Picks a congested tree link whose upstream endpoint is `hops`-1 hops from
// the source (i.e. the failed edge is `hops` hops downstream), uniformly
// among candidates; throws if none exists.
inline harness::DirectedLink link_at_hops(net::Routing& routing,
                                          net::NodeId source,
                                          const std::vector<net::NodeId>& members,
                                          int hops, util::Rng& rng) {
  const auto links = harness::multicast_tree_links(routing, source, members);
  std::vector<harness::DirectedLink> at;
  for (const auto& l : links) {
    if (routing.hop_count(source, l.to) == hops) at.push_back(l);
  }
  if (at.empty()) {
    throw std::runtime_error("link_at_hops: no tree link at that depth");
  }
  return at[rng.index(at.size())];
}

inline void print_header(const std::string& title, std::uint64_t seed,
                         const std::string& method) {
  util::print_banner(std::cout, title);
  std::cout << "seed=" << seed << "\n" << method << "\n\n";
}

// --threads N from the command line: 0/absent = hardware concurrency.
// Trial *construction* (every RNG draw) stays serial in the caller, so the
// per-seed statistics are identical for every thread count and --threads 1
// reproduces the historical serial output bit-for-bit.
inline unsigned flag_threads(const util::Flags& flags) {
  const long long n = flags.get_int("threads", 0);
  return n > 0 ? static_cast<unsigned>(n) : 0u;  // <=0 = hardware concurrency
}

// --threads and --kernel-threads together, capped so the product never
// oversubscribes the machine (harness::plan_thread_budget; replication
// parallelism yields first).  Benches that run parallel-kernel sessions
// should size their ReplicationRunner from .replication_threads and their
// SimSession::Options::kernel_threads from .kernel_threads.
inline harness::ThreadBudget flag_thread_budget(const util::Flags& flags) {
  const long long k = flags.get_int("kernel-threads", 0);
  const harness::ThreadBudget budget = harness::plan_thread_budget(
      flag_threads(flags), k > 0 ? static_cast<unsigned>(k) : 0u);
  if (budget.reduced) {
    std::cout << "[threads] capped to " << budget.replication_threads
              << " replication x " << std::max(1u, budget.kernel_threads)
              << " kernel (hardware concurrency "
              << harness::default_thread_count() << ")\n";
  }
  return budget;
}

// Runs one batch of independently-seeded trials across the replication
// pool; results come back in spec order regardless of thread interleaving.
inline std::vector<harness::RoundResult> run_trials(
    std::vector<TrialSpec> specs, const harness::ReplicationRunner& runner) {
  return runner.map<harness::RoundResult>(
      specs.size(),
      [&specs](std::size_t i) { return run_trial(std::move(specs[i])); });
}

// Wall-clock timer + BENCH_kernel.json section for one figure sweep.
// Records wall-clock per sweep, thread count and replication throughput so
// later PRs can compare kernel performance mechanically (see EXPERIMENTS.md
// for the schema).  The JSON path is overridable with --bench-json=PATH;
// --bench-json= (empty) disables recording.
class SweepPerf {
 public:
  SweepPerf(const util::Flags& flags, const std::string& bench_name,
            unsigned threads)
      : path_(flags.get_string("bench-json", "BENCH_kernel.json")),
        json_(path_, bench_name),
        threads_(threads),
        start_(std::chrono::steady_clock::now()) {}

  void add_replications(std::size_t n) { replications_ += n; }

  // Writes the section (call once, after the sweep's tables are printed).
  void finish() {
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - start_;
    if (path_.empty()) return;
    json_.set("threads", static_cast<double>(threads_));
    json_.set("replications", static_cast<double>(replications_));
    json_.set("wall_seconds", wall.count());
    if (wall.count() > 0) {
      json_.set("replications_per_second", replications_ / wall.count());
    }
    json_.save();
    std::cout << "\n[perf] " << path_ << " updated: wall="
              << util::Table::num(wall.count(), 3) << "s threads=" << threads_
              << " replications=" << replications_ << "\n";
  }

 private:
  std::string path_;
  util::PerfJson json_;
  unsigned threads_;
  std::size_t replications_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace srm::bench
