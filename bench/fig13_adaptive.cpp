// Figure 13: the ADAPTIVE algorithm on the same duplicate-heavy scenario as
// Figure 12.  After each round every member adjusts C1, C2, D1, D2 from its
// observed duplicates/delay.  Paper shape: the number of requests falls
// quickly, "reaching steady state after about forty iterations", with a
// small reduction in delay as well.
#include "adaptive_scenario.h"

int main(int argc, char** argv) {
  using namespace srm;
  const util::Flags flags(argc, argv);
  const std::uint64_t seed = flags.get_seed(42);
  const int runs = static_cast<int>(flags.get_int("runs", 10));
  const int rounds = static_cast<int>(flags.get_int("rounds", 100));
  const std::size_t nodes = 1000, g = 50;

  bench::print_header(
      "Figure 13: adaptive algorithm, same scenario as Figure 12", seed,
      "tree 1000/deg4, G=50, adaptive timers (backoff x3), AveDups=1, "
      "AveDelay=1; " +
          std::to_string(runs) + " runs x " + std::to_string(rounds) +
          " rounds");

  const auto sc = bench::find_duplicate_heavy_scenario(nodes, g, seed);

  std::vector<util::Samples> requests(rounds), delay(rounds);
  for (int run = 0; run < runs; ++run) {
    SrmConfig cfg;
    cfg.timers = paper_fixed_params(g);
    cfg.adaptive.enabled = true;
    cfg.backoff_factor = 3.0;  // Sec. VII-A
    harness::SimSession session(topo::make_bounded_degree_tree(nodes, 4),
                                sc.members,
                                {cfg, seed + 1000 + static_cast<std::uint64_t>(run), 1});
    harness::RoundSpec round;
    round.source_node = sc.source;
    round.congested = sc.congested;
    round.page = PageId{static_cast<SourceId>(sc.source), 0};
    for (int r = 0; r < rounds; ++r) {
      const auto res = harness::run_loss_round(session, round, r * 2);
      requests[r].add(static_cast<double>(res.requests));
      delay[r].add(res.last_member_delay_rtt);
    }
  }

  util::Table table({"round", "requests med [q1,q3]", "delay/RTT med [q1,q3]"});
  for (int r = 0; r < rounds; r += (r < 10 ? 1 : 10)) {
    table.add_row({util::Table::num(static_cast<std::size_t>(r + 1)),
                   bench::quartile_cell(requests[r]),
                   bench::quartile_cell(delay[r])});
  }
  table.print(std::cout);

  double early = 0, mid = 0, late = 0;
  for (int r = 0; r < 10; ++r) early += requests[r].mean() / 10.0;
  for (int r = 35; r < 45; ++r) mid += requests[r].mean() / 10.0;
  for (int r = rounds - 10; r < rounds; ++r) late += requests[r].mean() / 10.0;
  std::cout << "\nmean requests, rounds 1-10:   " << util::Table::num(early, 2)
            << "\nmean requests, rounds 36-45:  " << util::Table::num(mid, 2)
            << "\nmean requests, last 10:       " << util::Table::num(late, 2)
            << "\nPaper check: duplicates drop toward ~1 within ~40 rounds "
               "and stay there\n(compare the flat series of fig12).\n";
  return 0;
}
