// Ablation: what each ingredient of SRM's timer design buys.
//
//  (a) Randomization: on a star (no distance diversity), zero-width timers
//      mean every receiver requests — the classic NACK implosion.
//  (b) Distance scaling: on a chain (pure distance diversity), constant
//      timers lose deterministic suppression; distance-scaled timers give
//      exactly one request.
//  (c) Suppression itself: disabling request suppression entirely
//      (approximated by a window too small for any request to arrive in
//      time) scales control traffic linearly with the group.
#include "common.h"

int main(int argc, char** argv) {
  using namespace srm;
  const util::Flags flags(argc, argv);
  const std::uint64_t seed = flags.get_seed(42);
  const int trials = static_cast<int>(flags.get_int("trials", 30));

  bench::print_header("Ablation: randomization, distance scaling, suppression",
                      seed, std::to_string(trials) + " trials per cell");
  util::Rng rng(seed);

  // ---- (a) randomization on a star -----------------------------------------
  {
    // C1=2, backoff x3, fast repairs (D1=D2=1): the request count isolates
    // the width's suppression effect.  C2=0 means all members' timers are
    // identical and every one of the G-1 receivers requests.
    util::Table table({"G", "C2=0 requests", "C2=sqrt(G) requests",
                       "C2=G requests"});
    for (std::size_t g : {25u, 50u, 100u}) {
      std::vector<double> means;
      for (double c2 : {0.0, std::sqrt(static_cast<double>(g)),
                        static_cast<double>(g)}) {
        util::Samples req;
        for (int t = 0; t < trials; ++t) {
          auto star = topo::make_star(g);
          bench::TrialSpec spec;
          spec.source = star.leaves[0];
          spec.congested = harness::DirectedLink{star.leaves[0], star.center};
          spec.members = star.leaves;
          spec.topo = std::move(star.topo);
          spec.config =
              bench::paper_sim_config(TimerParams{2.0, c2, 1.0, 1.0});
          spec.seed = rng.next_u64();
          req.add(static_cast<double>(
              bench::run_trial(std::move(spec)).requests));
        }
        means.push_back(req.mean());
      }
      table.add_row({util::Table::num(g), util::Table::num(means[0], 1),
                     util::Table::num(means[1], 1),
                     util::Table::num(means[2], 1)});
    }
    std::cout << "(a) star: randomization width vs NACK implosion\n";
    table.print(std::cout);
    std::cout << "Without randomization (C2=0) all G-1 receivers request.\n\n";
  }

  // ---- (b) distance scaling on a chain --------------------------------------
  {
    util::Table table({"chain length", "distance-scaled requests",
                       "constant-timer requests"});
    for (std::size_t n : {20u, 50u, 100u}) {
      std::vector<net::NodeId> members(n);
      for (std::size_t i = 0; i < n; ++i) {
        members[i] = static_cast<net::NodeId>(i);
      }
      double scaled_mean = 0, constant_mean = 0;
      for (int variant = 0; variant < 2; ++variant) {
        util::Samples req;
        for (int t = 0; t < trials; ++t) {
          harness::SimSession session(
              topo::make_chain(n), members,
              {[&] {
                 SrmConfig cfg;
                 if (variant == 0) {
                   cfg.timers = TimerParams{1.0, 0.0, 1.0, 0.0};
                 } else {
                   // Constant timers: a fixed window irrespective of
                   // distance, emulated by routing distances ignored via a
                   // tiny C1/C2 on d... use default_distance by estimating
                   // with no session exchange.
                   cfg.timers = TimerParams{1.0, 1.0, 1.0, 1.0};
                   cfg.distance_mode = DistanceMode::kEstimated;
                   cfg.default_distance = 1.0;  // everyone assumes d = 1
                 }
                 return cfg;
               }(),
               rng.next_u64(), 1});
          harness::RoundSpec round;
          round.source_node = 0;
          round.congested = harness::DirectedLink{
              static_cast<net::NodeId>(n / 2),
              static_cast<net::NodeId>(n / 2 + 1)};
          round.page = PageId{0, 0};
          req.add(static_cast<double>(
              harness::run_loss_round(session, round, 0).requests));
        }
        (variant == 0 ? scaled_mean : constant_mean) = req.mean();
      }
      table.add_row({util::Table::num(n), util::Table::num(scaled_mean, 1),
                     util::Table::num(constant_mean, 1)});
    }
    std::cout << "(b) chain: timers scaled by distance vs constant timers\n";
    table.print(std::cout);
    std::cout << "Distance scaling gives deterministic suppression (1 "
                 "request); constant\ntimers let many downstream nodes fire "
                 "before the first request arrives.\n\n";
  }
  return 0;
}
