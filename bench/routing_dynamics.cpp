// Routing-dynamics benchmark: SPT maintenance under link churn.
//
// Part 1 — tree-serving throughput.  A random connected graph churns in
// batches (each batch restores the previous batch's cut links, then cuts a
// fresh random set), and after every batch all source trees are queried.
// The sweep times the query loop twice over the identical edit sequence:
// once with journal repair enabled (the default) and once with
// set_repair_enabled(false), which recomputes every invalidated tree from
// scratch — the pre-journal behavior.  Both modes probe the resulting trees
// and must produce the same checksum (repair is bit-identical to rebuild by
// construction; tests/net/routing_repair_test.cpp proves the strong version).
//
// Part 2 — end-to-end wall-time delta.  A compact fault_churn-style trial
// (partition/heal plus crash/rejoin churn over a random tree) runs with
// repair on and off; virtual-time behavior must be identical — only the
// wall clock moves.  Wall seconds are machine-dependent and therefore
// informational (check_bench.py skips *wall_seconds keys); the gated
// metrics are the *_trees_per_second throughputs.
//
// Records BENCH_routing.json (section routing_dynamics), overridable with
// --bench-json=PATH; empty disables recording.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>

#include "common.h"
#include "fault/checker.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "harness/fault_scenarios.h"
#include "net/routing.h"
#include "trace/trace.h"

namespace srm::bench {
namespace {

// One churn workload, generated once so both modes replay the same edits.
struct ChurnWorkload {
  net::Topology topo;
  std::vector<net::NodeId> sources;
  std::vector<std::vector<net::LinkId>> batch_cuts;
};

ChurnWorkload make_workload(std::size_t nodes, std::size_t edges,
                            std::size_t sources, std::size_t batches,
                            std::size_t churn, util::Rng& rng) {
  ChurnWorkload w;
  w.topo = topo::make_random_graph(nodes, edges, rng);
  std::vector<net::NodeId> all(nodes);
  for (std::size_t i = 0; i < nodes; ++i) all[i] = static_cast<net::NodeId>(i);
  rng.shuffle(all);
  w.sources.assign(all.begin(), all.begin() + static_cast<long>(sources));
  w.batch_cuts.reserve(batches);
  for (std::size_t b = 0; b < batches; ++b) {
    // Every batch starts from the fully-up graph (the previous batch's cuts
    // are restored first), so any `churn` distinct links form a valid cut.
    std::vector<net::LinkId> cuts;
    for (std::size_t i : rng.sample_without_replacement(edges, churn)) {
      cuts.push_back(static_cast<net::LinkId>(i));
    }
    std::sort(cuts.begin(), cuts.end());
    w.batch_cuts.push_back(std::move(cuts));
  }
  return w;
}

struct ModeResult {
  double wall_seconds = 0.0;
  double checksum = 0.0;
  std::size_t trees = 0;
};

ModeResult run_mode(const ChurnWorkload& w, bool repair) {
  net::Topology topo = w.topo;  // fresh copy: both modes see version 0 state
  net::Routing routing(topo);
  routing.set_repair_enabled(repair);
  routing.set_verify(false);  // measured path; equivalence is checksummed
  // Warm every source tree so the loop measures maintenance, not first build.
  for (net::NodeId s : w.sources) routing.spt(s);

  ModeResult r;
  const std::vector<net::LinkId>* restore = nullptr;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t b = 0; b < w.batch_cuts.size(); ++b) {
    if (restore != nullptr) {
      for (net::LinkId id : *restore) topo.set_link_up(id, true);
    }
    for (net::LinkId id : w.batch_cuts[b]) topo.set_link_up(id, false);
    restore = &w.batch_cuts[b];
    for (std::size_t i = 0; i < w.sources.size(); ++i) {
      const net::Spt& t = routing.spt(w.sources[i]);
      // O(1) probe per tree keeps the measured cost the tree maintenance
      // itself; the probe node walks the graph across batches.
      const auto probe = static_cast<net::NodeId>((b + i) % t.dist.size());
      if (!std::isinf(t.dist[probe])) {
        r.checksum += t.dist[probe] + t.hops[probe];
      }
      ++r.trees;
    }
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;
  r.wall_seconds = wall.count();
  return r;
}

// ---- Part 2: end-to-end fault_churn wall-time delta ------------------------

struct FaultTrialSpec {
  net::Topology topo;
  std::vector<net::NodeId> members;
  net::NodeId source = 0;
  harness::DirectedLink congested;
  SrmConfig config;
  fault::FaultPlan plan;
  int rounds = 4;
  std::uint64_t seed = 1;
};

struct FaultTrialResult {
  std::vector<double> latencies;  // virtual-time seconds; mode-independent
  std::size_t losses = 0;
  std::size_t unrecovered = 0;
};

FaultTrialResult run_fault_trial(FaultTrialSpec spec, bool repair) {
  harness::SimSession session(std::move(spec.topo), spec.members,
                              {spec.config, spec.seed, /*group=*/1});
  session.network().routing().set_repair_enabled(repair);
  trace::VectorSink capture;
  trace::Tracer tracer;
  tracer.set_sink(&capture);
  tracer.set_mask(static_cast<std::uint32_t>(trace::Category::kSrm) |
                  static_cast<std::uint32_t>(trace::Category::kFault));
  session.set_tracer(&tracer);

  fault::FaultInjector injector(session.queue(), session.mutable_topology(),
                                session.network(), std::move(spec.plan),
                                session.rng().fork());
  injector.set_membership_hooks(harness::membership_hooks(session));
  injector.set_tracer(&tracer);
  injector.arm();

  harness::RoundSpec round;
  round.source_node = spec.source;
  round.congested = spec.congested;
  round.page = PageId{static_cast<SourceId>(spec.source), 0};
  for (int r = 0; r < spec.rounds; ++r) {
    try {
      harness::run_loss_round(session, round, r * 2);
    } catch (const std::exception&) {
      // Disrupted round — part of the scenario (see bench/fault_churn.cpp).
    }
  }

  fault::CheckerOptions copts;
  copts.deadline = 200.0;
  const fault::CheckerReport report =
      fault::RecoveryInvariantChecker(copts).check(
          capture.events(), injector.disruption_windows(),
          session.queue().now());
  FaultTrialResult result;
  result.latencies = report.recovery_latencies;
  result.losses = report.losses;
  result.unrecovered = report.unrecovered.size();
  return result;
}

}  // namespace
}  // namespace srm::bench

int main(int argc, char** argv) {
  using namespace srm;
  const util::Flags flags(argc, argv);
  const std::uint64_t seed = flags.get_seed(1995);
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 500));
  const auto edges = static_cast<std::size_t>(flags.get_int("edges", 700));
  const auto sources = static_cast<std::size_t>(flags.get_int("sources", 48));
  const auto batches = static_cast<std::size_t>(flags.get_int("batches", 150));
  const int trials = static_cast<int>(flags.get_int("trials", 3));
  const std::string json_path =
      flags.get_string("bench-json", "BENCH_routing.json");
  util::PerfJson json(json_path, "routing_dynamics");

  bench::print_header(
      "Routing dynamics: journal repair vs full rebuild under link churn",
      seed,
      "random graph N=" + std::to_string(nodes) + ", E=" +
          std::to_string(edges) + "; " + std::to_string(sources) +
          " source trees queried after each of " + std::to_string(batches) +
          " churn batches; identical edit sequence per mode");

  util::Table table({"links cut/batch", "repair trees/s", "rebuild trees/s",
                     "speedup", "checksum"});
  bool all_passed = true;
  double churn10_speedup = 0.0;
  util::Rng rng(seed);
  for (const std::size_t churn : {2u, 5u, 10u}) {
    const bench::ChurnWorkload w =
        bench::make_workload(nodes, edges, sources, batches, churn, rng);
    const bench::ModeResult rebuild = bench::run_mode(w, /*repair=*/false);
    const bench::ModeResult repair = bench::run_mode(w, /*repair=*/true);
    const bool same = repair.checksum == rebuild.checksum;
    all_passed = all_passed && same;

    const double repair_tps =
        repair.wall_seconds > 0 ? repair.trees / repair.wall_seconds : 0.0;
    const double rebuild_tps =
        rebuild.wall_seconds > 0 ? rebuild.trees / rebuild.wall_seconds : 0.0;
    const double speedup = rebuild_tps > 0 ? repair_tps / rebuild_tps : 0.0;
    if (churn == 10u) churn10_speedup = speedup;
    table.add_row({util::Table::num(churn), util::Table::num(repair_tps, 0),
                   util::Table::num(rebuild_tps, 0),
                   util::Table::num(speedup, 2) + "x",
                   same ? "match" : "MISMATCH"});

    const std::string prefix = "churn" + std::to_string(churn) + "_";
    json.set(prefix + "repair_trees_per_second", repair_tps);
    json.set(prefix + "rebuild_trees_per_second", rebuild_tps);
    json.set(prefix + "speedup", speedup);  // informational (unsuffixed)
  }
  table.print(std::cout);

  // Part 2: the same end-to-end scenario as bench/fault_churn.cpp, run with
  // repair on and off.  Virtual-time results must match exactly (repaired
  // trees are bit-identical), so only wall time may differ.
  util::Rng frng(seed + 1);
  std::vector<bench::FaultTrialSpec> specs;
  for (int t = 0; t < trials; ++t) {
    bench::FaultTrialSpec spec;
    const std::size_t fault_nodes = 100;
    const std::size_t group = 40;
    spec.topo = topo::make_random_tree(fault_nodes, frng);
    std::vector<net::NodeId> all(fault_nodes);
    for (std::size_t i = 0; i < fault_nodes; ++i) {
      all[i] = static_cast<net::NodeId>(i);
    }
    frng.shuffle(all);
    spec.members.assign(all.begin(), all.begin() + static_cast<long>(group));
    std::sort(spec.members.begin(), spec.members.end());
    spec.source = spec.members[frng.index(group)];
    net::Routing routing(spec.topo);
    spec.congested = harness::choose_congested_link(routing, spec.source,
                                                    spec.members, frng);
    SrmConfig cfg = bench::paper_sim_config(paper_fixed_params(group));
    cfg.adaptive.enabled = true;
    spec.config = cfg;
    spec.plan = harness::partition_heal_plan(spec.topo, spec.source,
                                             /*t_down=*/30.0,
                                             /*t_heal=*/90.0, frng);
    spec.plan.merge(harness::churn_plan(spec.members, spec.source,
                                        /*cycles=*/10, /*t_begin=*/20.0,
                                        /*t_end=*/400.0, /*downtime=*/60.0,
                                        /*crash=*/true, frng));
    spec.seed = frng.next_u64();
    specs.push_back(std::move(spec));
  }

  double wall_by_mode[2] = {0.0, 0.0};
  std::vector<bench::FaultTrialResult> results_by_mode[2];
  for (int mode = 0; mode < 2; ++mode) {
    const bool repair = mode == 1;
    const auto start = std::chrono::steady_clock::now();
    for (const auto& spec : specs) {
      results_by_mode[mode].push_back(bench::run_fault_trial(spec, repair));
    }
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - start;
    wall_by_mode[mode] = wall.count();
  }
  bool behavior_identical = true;
  for (int t = 0; t < trials; ++t) {
    const auto& a = results_by_mode[0][static_cast<std::size_t>(t)];
    const auto& b = results_by_mode[1][static_cast<std::size_t>(t)];
    behavior_identical = behavior_identical && a.latencies == b.latencies &&
                         a.losses == b.losses &&
                         a.unrecovered == b.unrecovered;
  }
  all_passed = all_passed && behavior_identical;
  const double fault_speedup =
      wall_by_mode[1] > 0 ? wall_by_mode[0] / wall_by_mode[1] : 0.0;
  std::cout << "\nfault_churn end-to-end (" << trials
            << " trials, churn cycles=10): rebuild wall="
            << util::Table::num(wall_by_mode[0], 3)
            << "s repair wall=" << util::Table::num(wall_by_mode[1], 3)
            << "s (" << util::Table::num(fault_speedup, 2)
            << "x), virtual-time behavior "
            << (behavior_identical ? "identical" : "DIVERGED") << "\n";

  const bool speedup_ok = churn10_speedup >= 3.0;
  all_passed = all_passed && speedup_ok;
  std::cout << "\nPaper check: repaired trees match full recomputation on an\n"
               "identical churn sequence, end-to-end fault behavior is\n"
               "unchanged, and repair serves trees >= 3x faster than rebuild\n"
               "at 10 links cut per batch ("
            << util::Table::num(churn10_speedup, 2) << "x): "
            << (all_passed ? "PASS" : "FAIL") << "\n";

  if (!json_path.empty()) {
    json.set("fault_rebuild_wall_seconds", wall_by_mode[0]);
    json.set("fault_repair_wall_seconds", wall_by_mode[1]);
    json.set("fault_wall_speedup", fault_speedup);  // informational
    json.save();
    std::cout << "[perf] " << json_path << " updated (routing_dynamics)\n";
  }
  return all_passed ? 0 : 1;
}
