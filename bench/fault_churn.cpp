// Fault-churn benchmark: loss recovery under network dynamics (Sec. III-D).
//
// Each trial builds a fresh random tree (N=100 nodes, G=40 members), arms a
// fault plan — one partition/heal round trip plus crash/rejoin membership
// churn at a scripted rate — and runs loss-recovery rounds through the
// disruption.  The RecoveryInvariantChecker then folds the captured trace
// and reports per-loss recovery latencies; the sweep prints their
// percentiles at three churn rates and records them (in virtual-time
// microseconds, machine-independent) into BENCH_fault.json so
// scripts/check_bench.py can gate regressions.
//
// Paper shape to match: recovery keeps succeeding across the partition
// (zero unrecovered losses at surviving members) and latency degrades
// gracefully — not catastrophically — as churn increases.
#include <cstddef>

#include "common.h"
#include "fault/checker.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "harness/fault_scenarios.h"
#include "trace/trace.h"

namespace srm::bench {
namespace {

struct FaultTrialSpec {
  net::Topology topo;
  std::vector<net::NodeId> members;
  net::NodeId source = 0;
  harness::DirectedLink congested;
  SrmConfig config;
  fault::FaultPlan plan;
  double deadline = 200.0;
  int rounds = 6;
  std::uint64_t seed = 1;
};

struct FaultTrialResult {
  std::vector<double> latencies;  // seconds of virtual time
  std::size_t losses = 0;
  std::size_t unrecovered = 0;
  std::size_t exempt = 0;
  std::size_t disrupted_rounds = 0;
  bool passed = true;
};

FaultTrialResult run_fault_trial(FaultTrialSpec spec) {
  harness::SimSession session(std::move(spec.topo), spec.members,
                              {spec.config, spec.seed, /*group=*/1});
  trace::VectorSink capture;
  trace::Tracer tracer;
  tracer.set_sink(&capture);
  tracer.set_mask(static_cast<std::uint32_t>(trace::Category::kSrm) |
                  static_cast<std::uint32_t>(trace::Category::kFault));
  session.set_tracer(&tracer);

  fault::FaultInjector injector(session.queue(), session.mutable_topology(),
                                session.network(), std::move(spec.plan),
                                session.rng().fork());
  injector.set_membership_hooks(harness::membership_hooks(session));
  injector.set_tracer(&tracer);
  injector.arm();

  harness::RoundSpec round;
  round.source_node = spec.source;
  round.congested = spec.congested;
  round.page = PageId{static_cast<SourceId>(spec.source), 0};
  FaultTrialResult result;
  for (int r = 0; r < spec.rounds; ++r) {
    try {
      harness::run_loss_round(session, round, r * 2);
    } catch (const std::exception&) {
      // The faults made this round unrunnable (source crashed, congested
      // link down, scripted drop swallowed by the partition) — that is the
      // scenario, not an error; the checker judges what did happen.
      ++result.disrupted_rounds;
    }
  }

  fault::CheckerOptions copts;
  copts.deadline = spec.deadline;
  const fault::CheckerReport report =
      fault::RecoveryInvariantChecker(copts).check(
          capture.events(), injector.disruption_windows(),
          session.queue().now());
  result.latencies = report.recovery_latencies;
  result.losses = report.losses;
  result.unrecovered = report.unrecovered.size();
  result.exempt = report.exempt_departed + report.exempt_unhealed +
                  report.pending_past_trace;
  result.passed = report.passed;
  return result;
}

}  // namespace
}  // namespace srm::bench

int main(int argc, char** argv) {
  using namespace srm;
  const util::Flags flags(argc, argv);
  const std::uint64_t seed = flags.get_seed(1995);
  const int trials = static_cast<int>(flags.get_int("trials", 6));
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 100));
  const auto group = static_cast<std::size_t>(flags.get_int("members", 40));
  const int rounds = static_cast<int>(flags.get_int("rounds", 6));
  const harness::ReplicationRunner runner(bench::flag_threads(flags));
  const std::string json_path =
      flags.get_string("bench-json", "BENCH_fault.json");
  util::PerfJson json(json_path, "fault_churn");
  const auto start = std::chrono::steady_clock::now();

  bench::print_header(
      "Fault churn: recovery latency under partition + membership churn",
      seed,
      "random tree N=" + std::to_string(nodes) + ", G=" +
          std::to_string(group) +
          "; one partition/heal + crash/rejoin churn; adaptive timers; " +
          std::to_string(trials) + " trials per rate; threads=" +
          std::to_string(runner.threads()));

  util::Rng rng(seed);
  util::Table table({"churn cycles", "losses", "unrecovered", "exempt",
                     "latency p50 (s)", "p90 (s)", "p99 (s)", "invariants"});
  bool all_passed = true;
  std::size_t replications = 0;

  for (const std::size_t cycles : {2u, 5u, 10u}) {
    std::vector<bench::FaultTrialSpec> specs;
    specs.reserve(static_cast<std::size_t>(trials));
    for (int t = 0; t < trials; ++t) {
      bench::FaultTrialSpec spec;
      spec.topo = topo::make_random_tree(nodes, rng);
      std::vector<net::NodeId> all(nodes);
      for (std::size_t i = 0; i < nodes; ++i) {
        all[i] = static_cast<net::NodeId>(i);
      }
      rng.shuffle(all);
      spec.members.assign(all.begin(), all.begin() + static_cast<long>(group));
      std::sort(spec.members.begin(), spec.members.end());
      spec.source = spec.members[rng.index(group)];
      net::Routing routing(spec.topo);
      spec.congested = harness::choose_congested_link(routing, spec.source,
                                                      spec.members, rng);
      SrmConfig cfg = bench::paper_sim_config(paper_fixed_params(group));
      cfg.adaptive.enabled = true;
      spec.config = cfg;
      spec.rounds = rounds;
      // One partition at t=30 healed at t=90, plus `cycles` crash/rejoin
      // pairs spread over the run (60 s downtime each).
      spec.plan = harness::partition_heal_plan(spec.topo, spec.source,
                                               /*t_down=*/30.0,
                                               /*t_heal=*/90.0, rng);
      spec.plan.merge(harness::churn_plan(spec.members, spec.source, cycles,
                                          /*t_begin=*/20.0, /*t_end=*/400.0,
                                          /*downtime=*/60.0, /*crash=*/true,
                                          rng));
      spec.seed = rng.next_u64();
      specs.push_back(std::move(spec));
    }
    replications += specs.size();
    const auto results = runner.map<bench::FaultTrialResult>(
        specs.size(),
        [&specs](std::size_t i) {
          return bench::run_fault_trial(std::move(specs[i]));
        });

    util::Samples latency;
    std::size_t losses = 0;
    std::size_t unrecovered = 0;
    std::size_t exempt = 0;
    bool passed = true;
    for (const auto& r : results) {
      for (double s : r.latencies) latency.add(s);
      losses += r.losses;
      unrecovered += r.unrecovered;
      exempt += r.exempt;
      passed = passed && r.passed;
    }
    all_passed = all_passed && passed;

    const double p50 = latency.empty() ? 0.0 : latency.quantile(0.5);
    const double p90 = latency.empty() ? 0.0 : latency.quantile(0.9);
    const double p99 = latency.empty() ? 0.0 : latency.quantile(0.99);
    table.add_row({util::Table::num(cycles), util::Table::num(losses),
                   util::Table::num(unrecovered), util::Table::num(exempt),
                   util::Table::num(p50, 2), util::Table::num(p90, 2),
                   util::Table::num(p99, 2),
                   passed ? "PASS" : "FAIL"});

    // Virtual-time metrics (identical on every machine for a given seed);
    // check_bench.py treats *_us as lower-is-better.
    const std::string prefix = "churn" + std::to_string(cycles) + "_";
    json.set(prefix + "recovery_p50_us", p50 * 1e6);
    json.set(prefix + "recovery_p90_us", p90 * 1e6);
    json.set(prefix + "recovery_p99_us", p99 * 1e6);
    json.set(prefix + "losses", static_cast<double>(losses));
    json.set(prefix + "unrecovered", static_cast<double>(unrecovered));
  }
  table.print(std::cout);
  std::cout << "\nPaper check: zero unrecovered losses at surviving members\n"
               "across partition + churn; latency degrades gracefully with\n"
               "churn rate (Sec. III-D robustness).\n";

  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;
  if (!json_path.empty()) {
    json.set("threads", static_cast<double>(runner.threads()));
    json.set("replications", static_cast<double>(replications));
    json.set("rounds", static_cast<double>(rounds));
    json.set("wall_seconds", wall.count());
    json.save();
    std::cout << "[perf] " << json_path << " updated (fault_churn)\n";
  }
  return all_passed ? 0 : 1;
}
